package tm

import (
	"fmt"

	"datalogeq/internal/ast"
	"datalogeq/internal/cq"
	"datalogeq/internal/database"
	"datalogeq/internal/ucq"
)

// AltEncoding is the alternating-machine extension of the §5.3
// reduction (the construction behind Theorem 5.15): bit predicates gain
// a branching triple (u, v, w) and an existential/universal flag t, and
// universal configurations spawn both successors through a nonlinear
// rule. Π (goal C) is contained in Θ iff the alternating machine does
// not accept the empty tape in space 2ⁿ.
type AltEncoding struct {
	Machine *AltMachine
	N       int
	Program *ast.Program
	Errors  ucq.UCQ
	Cells   []CellSymbol
	SymPred map[CellSymbol]string
	// WindowsL and WindowsR are the window relations of the left and
	// right successor relations.
	WindowsL *WindowRelations
	WindowsR *WindowRelations
}

var (
	vW  = ast.V("W")
	vW2 = ast.V("W2")
	vT  = ast.V("T")
	vV2 = ast.V("V2")
)

// Encode53Alternating compiles a normalized alternating machine into
// the nonlinear reduction instance.
func Encode53Alternating(am *AltMachine, n int) (*AltEncoding, error) {
	if err := am.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		// With n = 1 a block's first and last chain nodes coincide, so
		// the two successor chains of a universal configuration (which
		// share their root node, exactly as the paper's universal rule
		// shares z') would also share their first symbol fact,
		// producing spurious window violations. The construction is
		// faithful for n >= 2.
		return nil, fmt.Errorf("tm: alternating encoding needs n >= 2")
	}
	e := &AltEncoding{
		Machine:  am,
		N:        n,
		Cells:    am.CellSymbols(),
		SymPred:  make(map[CellSymbol]string),
		WindowsL: am.branchMachine(LeftBranch).Windows(),
		WindowsR: am.branchMachine(RightBranch).Windows(),
	}
	for i, c := range e.Cells {
		e.SymPred[c] = fmt.Sprintf("sym%d", i)
	}
	e.Program = e.buildProgram()
	e.Errors = e.buildErrors()
	return e, nil
}

// Atom shapes: bit_i(x, y, z, u, v, w, t), a_i(x, y, bit, carry, z, z',
// u, v, w, t).
func (e *AltEncoding) bit(i int, z, u, v, w, t ast.Term) ast.Atom {
	return ast.NewAtom(predBit(i), vX, vY, z, u, v, w, t)
}

func (e *AltEncoding) aAtom(i int, b, c, z, z2, u, v, w, t ast.Term) ast.Atom {
	return ast.NewAtom(predA(i), vX, vY, b, c, z, z2, u, v, w, t)
}

func (e *AltEncoding) buildProgram() *ast.Program {
	n := e.N
	prog := &ast.Program{}
	// Interior address-bit rules.
	for i := 1; i < n; i++ {
		for _, bc := range bitCombos() {
			prog.Rules = append(prog.Rules, ast.NewRule(
				e.bit(i, vZ, vU, vV, vW, vT),
				e.bit(i+1, vZ2, vU, vV, vW, vT),
				e.aAtom(i, bc[0], bc[1], vZ, vZ2, vU, vV, vW, vT),
			))
		}
	}
	// Symbol rules: continue within the configuration.
	for _, cell := range e.Cells {
		q := e.SymPred[cell]
		for _, bc := range bitCombos() {
			prog.Rules = append(prog.Rules, ast.NewRule(
				e.bit(n, vZ, vU, vV, vW, vT),
				e.bit(1, vZ2, vU, vV, vW, vT),
				e.aAtom(n, bc[0], bc[1], vZ, vZ2, vU, vV, vW, vT),
				ast.NewAtom(q, vZ),
			))
		}
	}
	fresh := func(name string) ast.Term { return ast.V(name) }
	// Existential configuration change (flag x): the successor is
	// universal (flag y); u migrates to the v position (left) or the w
	// position (right).
	for _, cell := range e.Cells {
		q := e.SymPred[cell]
		for _, bc := range bitCombos() {
			// Left successor.
			prog.Rules = append(prog.Rules, ast.NewRule(
				e.bit(n, vZ, vU, vV, vW, vX),
				e.bit(1, fresh("Z2"), fresh("U2"), vU, fresh("W2"), vY),
				e.aAtom(n, bc[0], bc[1], vZ, fresh("Z2"), vU, vV, vW, vX),
				ast.NewAtom(q, vZ),
			))
			// Right successor.
			prog.Rules = append(prog.Rules, ast.NewRule(
				e.bit(n, vZ, vU, vV, vW, vX),
				e.bit(1, fresh("Z2"), fresh("U2"), fresh("V2"), vU, vY),
				e.aAtom(n, bc[0], bc[1], vZ, fresh("Z2"), vU, vV, vW, vX),
				ast.NewAtom(q, vZ),
			))
		}
	}
	// Universal configuration change (flag y): both successors, each on
	// its own chain; the successors are existential (flag x).
	for _, cell := range e.Cells {
		q := e.SymPred[cell]
		for _, bc := range bitCombos() {
			// Both successors are rooted at the same chain node z';
			// their configuration triples distinguish them (u in the
			// v position for the left successor, in the w position
			// for the right one).
			prog.Rules = append(prog.Rules, ast.NewRule(
				e.bit(n, vZ, vU, vV, vW, vY),
				e.bit(1, fresh("Z2"), fresh("UL"), vU, fresh("WL"), vX),
				e.bit(1, fresh("Z2"), fresh("UR"), fresh("VR"), vU, vX),
				e.aAtom(n, bc[0], bc[1], vZ, fresh("Z2"), vU, vV, vW, vY),
				ast.NewAtom(q, vZ),
			))
		}
	}
	// End rules at accepting symbols.
	for _, cell := range e.Cells {
		if !cell.IsComposite() || !e.Machine.isAccept(cell.State) {
			continue
		}
		q := e.SymPred[cell]
		for _, bc := range bitCombos() {
			prog.Rules = append(prog.Rules, ast.NewRule(
				e.bit(n, vZ, vU, vV, vW, vT),
				e.aAtom(n, bc[0], bc[1], vZ, vZ2, vU, vV, vW, vT),
				ast.NewAtom(q, vZ),
			))
		}
	}
	// Start rule: the initial configuration is existential.
	prog.Rules = append(prog.Rules, ast.NewRule(
		ast.NewAtom(Goal),
		e.bit(1, vZ, vU, vV, vW, vX),
		ast.NewAtom("start", vZ),
	))
	return prog
}

func (e *AltEncoding) buildErrors() ucq.UCQ {
	n := e.N
	var out []cq.CQ
	head := ast.NewAtom(Goal)
	add := func(atoms ...ast.Atom) {
		out = append(out, cq.CQ{Head: head.Clone(), Body: atoms})
	}
	aq := func(i int, bit, carry, z, z2, u, v, w, t ast.Term) ast.Atom {
		return ast.NewAtom(predA(i), vX, vY, bit, carry, z, z2, u, v, w, t)
	}

	// (a) First address is not 0...0.
	for i := 1; i <= n; i++ {
		d := &dotter{}
		z := chainVars(i)
		atoms := []ast.Atom{ast.NewAtom("start", z[0])}
		for j := 1; j <= i; j++ {
			bitArg := d.dot()
			if j == i {
				bitArg = vY
			}
			atoms = append(atoms, aq(j, bitArg, d.dot(), z[j-1], z[j], vU, vV, vW, vT))
		}
		add(atoms...)
	}

	// (b) Counter errors, as in the deterministic case, with the extra
	// arguments wild.
	{
		d := &dotter{}
		add(aq(1, d.dot(), vX, d.dot(), d.dot(), d.dot(), d.dot(), d.dot(), d.dot()))
	}
	span := func(i int, alphaBit ast.Term, withNext bool, nextBits, nextCarries map[int]ast.Term) []ast.Atom {
		d := &dotter{}
		last := i
		if withNext {
			last = i + 1
		}
		total := (n - i + 1) + last
		z := chainVars(total)
		var atoms []ast.Atom
		pos := 0
		for j := i; j <= n; j++ {
			bitArg := d.dot()
			if j == i {
				bitArg = alphaBit
			}
			atoms = append(atoms, aq(j, bitArg, d.dot(), z[pos], z[pos+1], d.dot(), d.dot(), d.dot(), d.dot()))
			pos++
		}
		for j := 1; j <= last; j++ {
			bitArg := d.dot()
			if t, ok := nextBits[j]; ok {
				bitArg = t
			}
			carryArg := d.dot()
			if t, ok := nextCarries[j]; ok {
				carryArg = t
			}
			atoms = append(atoms, aq(j, bitArg, carryArg, z[pos], z[pos+1], d.dot(), d.dot(), d.dot(), d.dot()))
			pos++
		}
		return atoms
	}
	for i := 1; i < n; i++ {
		add(span(i, vY, true, nil, map[int]ast.Term{i: vY, i + 1: vX})...)
		add(span(i, vX, true, nil, map[int]ast.Term{i + 1: vY})...)
		d := &dotter{}
		z := chainVars(2)
		add(
			aq(i, d.dot(), vX, z[0], z[1], d.dot(), d.dot(), d.dot(), d.dot()),
			aq(i+1, d.dot(), vY, z[1], z[2], d.dot(), d.dot(), d.dot(), d.dot()),
		)
	}
	for i := 1; i <= n; i++ {
		add(span(i, vX, false, map[int]ast.Term{i: vY}, map[int]ast.Term{i: vX})...)
		add(span(i, vY, false, map[int]ast.Term{i: vY}, map[int]ast.Term{i: vY})...)
		add(span(i, vY, false, map[int]ast.Term{i: vX}, map[int]ast.Term{i: vX})...)
		add(span(i, vX, false, map[int]ast.Term{i: vX}, map[int]ast.Term{i: vY})...)
	}

	// (c) Configuration-boundary errors, for both successor patterns:
	// premature change (some bit 0) and missing change (all bits 1).
	migrations := [][2]int{{7, 0}, {8, 0}} // v-position or w-position gets u
	_ = migrations
	for i := 1; i <= n; i++ {
		for _, left := range []bool{true, false} {
			d := &dotter{}
			z := chainVars(n - i + 2)
			var atoms []ast.Atom
			pos := 0
			for j := i; j <= n; j++ {
				bitArg := d.dot()
				if j == i {
					bitArg = vX
				}
				atoms = append(atoms, aq(j, bitArg, d.dot(), z[pos], z[pos+1], vU, vV, vW, vT))
				pos++
			}
			// Next block in a successor configuration: u appears in
			// the v position (left) or the w position (right).
			if left {
				atoms = append(atoms, aq(1, d.dot(), d.dot(), z[pos], z[pos+1], d.dot(), vU, d.dot(), d.dot()))
			} else {
				atoms = append(atoms, aq(1, d.dot(), d.dot(), z[pos], z[pos+1], d.dot(), d.dot(), vU, d.dot()))
			}
			add(atoms...)
		}
	}
	{
		// Missing change: all-ones block continued with identical
		// (u, v, w).
		d := &dotter{}
		z := chainVars(n + 1)
		var atoms []ast.Atom
		for j := 1; j <= n; j++ {
			atoms = append(atoms, aq(j, vY, d.dot(), z[j-1], z[j], vU, vV, vW, vT))
		}
		atoms = append(atoms, aq(1, d.dot(), d.dot(), z[n], z[n+1], vU, vV, vW, d.dot()))
		add(atoms...)
	}

	// (d) Initial-configuration errors.
	startCell := CellSymbol{State: e.Machine.Start, Sym: e.Machine.Blank}
	for _, cell := range e.Cells {
		if cell == startCell {
			continue
		}
		d := &dotter{}
		z := chainVars(n)
		atoms := []ast.Atom{ast.NewAtom("start", z[0])}
		for j := 1; j <= n; j++ {
			atoms = append(atoms, aq(j, d.dot(), d.dot(), z[j-1], z[j], vU, vV, vW, vT))
		}
		atoms = append(atoms, ast.NewAtom(e.SymPred[cell], z[n-1]))
		add(atoms...)
	}
	blank := CellSymbol{Sym: e.Machine.Blank}
	for _, cell := range e.Cells {
		if cell == blank {
			continue
		}
		for i := 1; i <= n; i++ {
			d := &dotter{}
			zs := ast.V("ZS")
			z := chainVars(n - i + 1)
			atoms := []ast.Atom{
				ast.NewAtom("start", zs),
				aq(1, d.dot(), d.dot(), zs, d.dot(), vU, vV, vW, vT),
			}
			for j := i; j <= n; j++ {
				bitArg := d.dot()
				if j == i {
					bitArg = vY
				}
				atoms = append(atoms, aq(j, bitArg, d.dot(), z[j-i], z[j-i+1], vU, vV, vW, vT))
			}
			atoms = append(atoms, ast.NewAtom(e.SymPred[cell], z[n-i]))
			add(atoms...)
		}
	}

	// (e) Flag/symbol consistency: a block whose symbol has a universal
	// state must carry flag y, and vice versa.
	for _, cell := range e.Cells {
		if !cell.IsComposite() {
			continue
		}
		d := &dotter{}
		if e.Machine.Universal[cell.State] {
			add(
				aq(n, d.dot(), d.dot(), vZ, d.dot(), d.dot(), d.dot(), d.dot(), vX),
				ast.NewAtom(e.SymPred[cell], vZ),
			)
		} else {
			add(
				aq(n, d.dot(), d.dot(), vZ, d.dot(), d.dot(), d.dot(), d.dot(), vY),
				ast.NewAtom(e.SymPred[cell], vZ),
			)
		}
	}

	// (f) Window violations per branch: the successor block pattern
	// distinguishes left (u in the v position) from right (u in the w
	// position).
	e.addAltWindowErrors(&out, e.WindowsL, true)
	e.addAltWindowErrors(&out, e.WindowsR, false)
	return ucq.New(out...)
}

func (e *AltEncoding) addAltWindowErrors(out *[]cq.CQ, w *WindowRelations, left bool) {
	n := e.N
	head := ast.NewAtom(Goal)
	add := func(atoms []ast.Atom) {
		*out = append(*out, cq.CQ{Head: head.Clone(), Body: atoms})
	}
	aq := func(i int, bit, carry, z, z2, u, v, wt, t ast.Term) ast.Atom {
		return ast.NewAtom(predA(i), vX, vY, bit, carry, z, z2, u, v, wt, t)
	}
	nextArgs := func(d *dotter) (u, v, wt ast.Term) {
		if left {
			return d.dot(), vU, d.dot()
		}
		return d.dot(), d.dot(), vU
	}
	block := func(d *dotter, z []ast.Term, zoff int, bits []ast.Term, u, v, wt, t ast.Term) []ast.Atom {
		var atoms []ast.Atom
		for j := 1; j <= n; j++ {
			bitArg := bits[j-1]
			if bitArg == (ast.Term{}) {
				bitArg = d.dot()
			}
			atoms = append(atoms, aq(j, bitArg, d.dot(), z[zoff+j-1], z[zoff+j], u, v, wt, t))
		}
		return atoms
	}
	freshBits := func() []ast.Term { return make([]ast.Term, n) }
	sharedBits := func(prefix string) []ast.Term {
		outBits := make([]ast.Term, n)
		for j := range outBits {
			outBits[j] = ast.V(fmt.Sprintf("%s%d", prefix, j+1))
		}
		return outBits
	}
	legalTriple := func(a, b, c CellSymbol) bool {
		k := 0
		for _, s := range []CellSymbol{a, b, c} {
			if s.IsComposite() {
				k++
			}
		}
		return k <= 1
	}
	legalPair := func(a, b CellSymbol) bool { return !(a.IsComposite() && b.IsComposite()) }
	newZ2 := func() []ast.Term {
		z2 := chainVars(n)
		for i := range z2 {
			z2[i] = ast.V(fmt.Sprintf("NW%d", i+1))
		}
		return z2
	}
	for _, a := range e.Cells {
		for _, b := range e.Cells {
			if !legalPair(a, b) {
				continue
			}
			for _, c := range e.Cells {
				if !legalTriple(a, b, c) {
					continue
				}
				for _, dsym := range e.Cells {
					if w.R[Window4{a, b, c, dsym}] {
						continue
					}
					d := &dotter{}
					z1 := chainVars(3 * n)
					z2 := newZ2()
					mid := sharedBits("S")
					nu, nv, nw := nextArgs(d)
					var atoms []ast.Atom
					atoms = append(atoms, block(d, z1, 0, freshBits(), vU, vV, vW, vT)...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[a], z1[n-1]))
					atoms = append(atoms, block(d, z1, n, mid, vU, vV, vW, vT)...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[b], z1[2*n-1]))
					atoms = append(atoms, block(d, z1, 2*n, freshBits(), vU, vV, vW, vT)...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[c], z1[3*n-1]))
					atoms = append(atoms, block(d, z2, 0, mid, nu, nv, nw, d.dot())...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[dsym], z2[n-1]))
					add(atoms)
				}
			}
		}
	}
	zeroBits := func() []ast.Term {
		outBits := make([]ast.Term, n)
		for j := range outBits {
			outBits[j] = vX
		}
		return outBits
	}
	oneAtEnd := func() []ast.Term {
		outBits := zeroBits()
		outBits[0] = vY
		return outBits
	}
	onesBits := func() []ast.Term {
		outBits := make([]ast.Term, n)
		for j := range outBits {
			outBits[j] = vY
		}
		return outBits
	}
	zeroAtEnd := func() []ast.Term {
		outBits := onesBits()
		outBits[0] = vX
		return outBits
	}
	ends := []struct {
		rel      map[Window3]bool
		bitsA    func() []ast.Term
		bitsB    func() []ast.Term
		bitsNext func() []ast.Term
	}{
		{w.Rl, zeroBits, oneAtEnd, zeroBits},
		{w.Rr, zeroAtEnd, onesBits, onesBits},
	}
	for _, end := range ends {
		for _, a := range e.Cells {
			for _, b := range e.Cells {
				if !legalPair(a, b) {
					continue
				}
				for _, dsym := range e.Cells {
					if end.rel[Window3{a, b, dsym}] {
						continue
					}
					d := &dotter{}
					z1 := chainVars(2 * n)
					z2 := newZ2()
					nu, nv, nw := nextArgs(d)
					var atoms []ast.Atom
					atoms = append(atoms, block(d, z1, 0, end.bitsA(), vU, vV, vW, vT)...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[a], z1[n-1]))
					atoms = append(atoms, block(d, z1, n, end.bitsB(), vU, vV, vW, vT)...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[b], z1[2*n-1]))
					atoms = append(atoms, block(d, z2, 0, end.bitsNext(), nu, nv, nw, d.dot())...)
					atoms = append(atoms, ast.NewAtom(e.SymPred[dsym], z2[n-1]))
					add(atoms)
				}
			}
		}
	}
}

// ComputationTreeDB builds the database of an alternating computation
// tree, branching the z-chain at universal configurations.
func (e *AltEncoding) ComputationTreeDB(tree *RunTree) (*database.DB, error) {
	n := e.N
	size := 1 << uint(n)
	db := database.New()
	nodeCounter := 0
	carries := func(p int) []int {
		out := make([]int, n)
		if p == 0 {
			for i := range out {
				out[i] = 1
			}
			return out
		}
		prev := p - 1
		c := 1
		for i := 0; i < n; i++ {
			out[i] = c
			alpha := (prev >> uint(i)) & 1
			c = c & alpha
		}
		return out
	}
	bitConst := func(b int) string {
		if b == 0 {
			return BitZero
		}
		return BitOne
	}
	flagConst := func(universal bool) string {
		if universal {
			return BitOne
		}
		return BitZero
	}
	// emit writes one configuration's chain, whose first node name is
	// supplied by the parent (successor chains are rooted at the
	// parent's z'; a universal configuration's two successors share
	// that root node and are told apart by their u/v/w triples).
	freshID := func(prefix string) string {
		nodeCounter++
		return fmt.Sprintf("%s%d", prefix, nodeCounter)
	}
	var emit func(rt *RunTree, first, u, v, w string) error
	emit = func(rt *RunTree, first, u, v, w string) error {
		cfg := rt.Config
		if len(cfg.Tape) != size {
			return fmt.Errorf("tm: configuration has %d cells, want %d", len(cfg.Tape), size)
		}
		cells := ConfigCells(cfg)
		universal := e.Machine.Universal[cfg.State]
		flag := flagConst(universal)
		// Node names: the first is fixed; the rest are fresh.
		names := make([]string, size*n)
		names[0] = first
		for i := 1; i < len(names); i++ {
			names[i] = freshID("z")
		}
		node := func(p, i int) string { return names[p*n+(i-1)] }
		// The shared root of the successor chains.
		childRoot := "z_end"
		if len(rt.Children) > 0 {
			childRoot = freshID("z")
		}
		for p := 0; p < size; p++ {
			cs := carries(p)
			for i := 1; i <= n; i++ {
				cur := node(p, i)
				var next string
				switch {
				case i < n:
					next = node(p, i+1)
				case p < size-1:
					next = node(p+1, 1)
				default:
					next = childRoot
				}
				addrBit := (p >> uint(i-1)) & 1
				db.Add(predA(i), database.Tuple{
					BitZero, BitOne,
					bitConst(addrBit), bitConst(cs[i-1]),
					cur, next,
					u, v, w, flag,
				})
				if i == n {
					db.Add(e.SymPred[cells[p]], database.Tuple{cur})
				}
			}
		}
		for ci, child := range rt.Children {
			cu := freshID("u")
			var cv, cw string
			if rt.Branches[ci] == LeftBranch {
				cv, cw = u, freshID("w")
			} else {
				cv, cw = freshID("v"), u
			}
			if err := emit(child, childRoot, cu, cv, cw); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(tree, "z_start", "u_root", "v_root", "w_root"); err != nil {
		return nil, err
	}
	db.Add("start", database.Tuple{"z_start"})
	return db, nil
}

// Stats computes the size statistics of the alternating encoding.
func (e *AltEncoding) Stats() Stats {
	s := Stats{
		Rules:        len(e.Program.Rules),
		ErrorQueries: e.Errors.Size(),
		ErrorAtoms:   e.Errors.TotalAtoms(),
		Cells:        len(e.Cells),
		WindowSize:   len(e.WindowsL.R) + len(e.WindowsR.R),
	}
	for _, r := range e.Program.Rules {
		s.RuleAtoms += len(r.Body) + 1
	}
	return s
}
