// Package tm provides the Turing-machine substrate for the paper's
// lower-bound constructions (§5.3 and §6): a space-bounded machine
// model with deterministic, nondeterministic, and alternating
// acceptance, a configuration-graph simulator, the local window
// relations R_M, R^l_M, R^r_M that make machine steps a local property,
// and generators that compile a machine into the Datalog program Π and
// union of conjunctive queries Θ of the reduction, with
//
//	Π ⊆ Θ   iff   M does not accept the empty tape (in the space bound).
package tm

import (
	"fmt"
	"sort"
	"strings"
)

// Move is a head direction.
type Move int

// Head movement directions.
const (
	Left Move = iota
	Right
	Stay
)

func (m Move) String() string {
	switch m {
	case Left:
		return "L"
	case Right:
		return "R"
	case Stay:
		return "S"
	}
	return "?"
}

// Transition is a machine transition: in state State reading Read,
// write Write, move the head, and enter NewState.
type Transition struct {
	State    string
	Read     string
	Write    string
	Move     Move
	NewState string
}

// Machine is a single-tape Turing machine. Nondeterminism is expressed
// by multiple transitions on the same (State, Read) pair; alternation by
// marking states universal.
type Machine struct {
	// States and TapeSymbols enumerate the machine's components; Blank
	// must be among TapeSymbols.
	States      []string
	TapeSymbols []string
	Blank       string
	Start       string
	// Accept lists the accepting states (terminal: acceptance is by
	// reaching one, regardless of remaining transitions).
	Accept []string
	// Universal marks universal states; all others are existential.
	Universal   map[string]bool
	Transitions []Transition
}

// Validate checks structural sanity.
func (m *Machine) Validate() error {
	states := make(map[string]bool)
	for _, s := range m.States {
		states[s] = true
	}
	syms := make(map[string]bool)
	for _, s := range m.TapeSymbols {
		syms[s] = true
	}
	if !syms[m.Blank] {
		return fmt.Errorf("tm: blank %q not among tape symbols", m.Blank)
	}
	if !states[m.Start] {
		return fmt.Errorf("tm: start state %q not among states", m.Start)
	}
	for _, a := range m.Accept {
		if !states[a] {
			return fmt.Errorf("tm: accept state %q not among states", a)
		}
	}
	for u := range m.Universal {
		if !states[u] {
			return fmt.Errorf("tm: universal state %q not among states", u)
		}
	}
	for _, t := range m.Transitions {
		if !states[t.State] || !states[t.NewState] {
			return fmt.Errorf("tm: transition %v uses unknown state", t)
		}
		if !syms[t.Read] || !syms[t.Write] {
			return fmt.Errorf("tm: transition %v uses unknown symbol", t)
		}
	}
	return nil
}

// IsDeterministic reports whether no (state, read) pair has two
// transitions.
func (m *Machine) IsDeterministic() bool {
	seen := make(map[[2]string]bool)
	for _, t := range m.Transitions {
		k := [2]string{t.State, t.Read}
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// isAccept reports whether state is accepting.
func (m *Machine) isAccept(state string) bool {
	for _, a := range m.Accept {
		if a == state {
			return true
		}
	}
	return false
}

// Config is a machine configuration with a fixed tape length (the space
// bound): the head position, current state, and tape contents.
type Config struct {
	State string
	Head  int
	Tape  []string
}

// Key returns a canonical map key.
func (c Config) Key() string {
	return fmt.Sprintf("%s|%d|%s", c.State, c.Head, strings.Join(c.Tape, "\x00"))
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	tape := make([]string, len(c.Tape))
	copy(tape, c.Tape)
	return Config{State: c.State, Head: c.Head, Tape: tape}
}

// String renders the configuration with the head position bracketed.
func (c Config) String() string {
	var b strings.Builder
	for i, s := range c.Tape {
		if i == c.Head {
			fmt.Fprintf(&b, "[%s:%s]", c.State, s)
		} else {
			b.WriteString(s)
		}
		if i < len(c.Tape)-1 {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// InitialConfig returns the start configuration on an empty tape of the
// given length.
func (m *Machine) InitialConfig(space int) Config {
	tape := make([]string, space)
	for i := range tape {
		tape[i] = m.Blank
	}
	return Config{State: m.Start, Head: 0, Tape: tape}
}

// Successors returns the configurations reachable in one step within
// the space bound. Moves off the tape edges are discarded (the machine
// is space-bounded by fiat).
func (m *Machine) Successors(c Config) []Config {
	var out []Config
	for _, t := range m.Transitions {
		if t.State != c.State || t.Read != c.Tape[c.Head] {
			continue
		}
		n := c.Clone()
		n.Tape[n.Head] = t.Write
		n.State = t.NewState
		switch t.Move {
		case Left:
			n.Head--
		case Right:
			n.Head++
		}
		if n.Head < 0 || n.Head >= len(n.Tape) {
			continue
		}
		out = append(out, n)
	}
	return out
}

// Accepts decides whether the machine accepts the empty tape within the
// given space bound, under alternating semantics: an accepting-state
// configuration accepts; an existential configuration accepts when some
// successor does; a universal configuration accepts when it has at
// least one successor and all successors accept. The answer is the
// least fixpoint over the finite reachable configuration graph.
func (m *Machine) Accepts(space int) bool {
	init := m.InitialConfig(space)
	// Explore the reachable configuration graph.
	configs := []Config{init}
	index := map[string]int{init.Key(): 0}
	var succ [][]int
	for i := 0; i < len(configs); i++ {
		ss := m.Successors(configs[i])
		row := make([]int, 0, len(ss))
		for _, s := range ss {
			k := s.Key()
			j, ok := index[k]
			if !ok {
				j = len(configs)
				index[k] = j
				configs = append(configs, s)
			}
			row = append(row, j)
		}
		succ = append(succ, row)
	}
	// Least fixpoint of acceptance.
	accepting := make([]bool, len(configs))
	for {
		changed := false
		for i, c := range configs {
			if accepting[i] {
				continue
			}
			if m.isAccept(c.State) {
				accepting[i] = true
				changed = true
				continue
			}
			if len(succ[i]) == 0 {
				continue
			}
			if m.Universal[c.State] {
				all := true
				for _, j := range succ[i] {
					if !accepting[j] {
						all = false
						break
					}
				}
				if all {
					accepting[i] = true
					changed = true
				}
			} else {
				for _, j := range succ[i] {
					if accepting[j] {
						accepting[i] = true
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			return accepting[0]
		}
	}
}

// AcceptingRun returns a sequence of configurations from the initial
// configuration to an accepting one, for deterministic or existential
// machines (it follows any accepting branch). It returns false when the
// machine does not accept.
func (m *Machine) AcceptingRun(space int) ([]Config, bool) {
	init := m.InitialConfig(space)
	type node struct {
		cfg    Config
		parent int
	}
	queue := []node{{cfg: init, parent: -1}}
	seen := map[string]bool{init.Key(): true}
	for i := 0; i < len(queue); i++ {
		c := queue[i].cfg
		if m.isAccept(c.State) {
			var rev []Config
			for j := i; j >= 0; j = queue[j].parent {
				rev = append(rev, queue[j].cfg)
			}
			run := make([]Config, len(rev))
			for k := range rev {
				run[k] = rev[len(rev)-1-k]
			}
			return run, true
		}
		for _, s := range m.Successors(c) {
			if !seen[s.Key()] {
				seen[s.Key()] = true
				queue = append(queue, node{cfg: s, parent: i})
			}
		}
	}
	return nil, false
}

// CellSymbol is the §5.3 notion of configuration symbol: a tape symbol,
// or a composite (state, symbol) at the head position.
type CellSymbol struct {
	State string // empty for plain tape symbols
	Sym   string
}

func (s CellSymbol) String() string {
	if s.State == "" {
		return s.Sym
	}
	return "(" + s.State + "," + s.Sym + ")"
}

// IsComposite reports whether the cell carries the head.
func (s CellSymbol) IsComposite() bool { return s.State != "" }

// CellSymbols enumerates all cell symbols of the machine, plain symbols
// first, in a deterministic order.
func (m *Machine) CellSymbols() []CellSymbol {
	var out []CellSymbol
	syms := append([]string(nil), m.TapeSymbols...)
	sort.Strings(syms)
	states := append([]string(nil), m.States...)
	sort.Strings(states)
	for _, s := range syms {
		out = append(out, CellSymbol{Sym: s})
	}
	for _, q := range states {
		for _, s := range syms {
			out = append(out, CellSymbol{State: q, Sym: s})
		}
	}
	return out
}

// ConfigCells renders a configuration as its cell-symbol string.
func ConfigCells(c Config) []CellSymbol {
	out := make([]CellSymbol, len(c.Tape))
	for i, s := range c.Tape {
		if i == c.Head {
			out[i] = CellSymbol{State: c.State, Sym: s}
		} else {
			out[i] = CellSymbol{Sym: s}
		}
	}
	return out
}
