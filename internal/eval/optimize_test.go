package eval_test

import (
	"strings"
	"testing"

	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"
)

// TestOptimizeRequiresRegistration pins the hook contract: this test
// binary does not import internal/opt, so Options.Optimize must fail
// with a message naming the package to import — not silently evaluate
// unoptimized. (The registered path is exercised by internal/opt's
// differential tests.)
func TestOptimizeRequiresRegistration(t *testing.T) {
	prog := parser.MustProgram(`p(X, Y) :- e(X, Y).`)
	_, _, err := eval.Eval(prog, gen.ChainGraph(2), eval.Options{Optimize: true})
	if err == nil || !strings.Contains(err.Error(), "internal/opt") {
		t.Fatalf("err = %v, want a message naming internal/opt", err)
	}
}
