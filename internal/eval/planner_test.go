package eval_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/guard"
	"datalogeq/internal/parser"
)

// modeComparable strips the Stats fields that legitimately differ
// between planner-on and planner-off runs: index usage and plan-cache
// counters depend on the chosen join orders. Everything else —
// fixpoint size, round count, firings, budget fact/step accounting —
// must not, because the set of complete matches of a rule body is
// independent of the order its atoms are joined in.
func modeComparable(s eval.Stats) eval.Stats {
	s = statsComparable(s)
	s.IndexHits, s.IndexBuilds, s.IndexAppends = 0, 0, 0
	s.PlanCacheHits, s.PlanCacheMisses, s.PlanReplans = 0, 0, 0
	s.Budget.Plans = 0
	return s
}

// tripComparable renders an error for cross-mode comparison: a
// *guard.LimitError snapshot legitimately differs in the Plans
// dimension (plan constructions depend on the chosen join orders and
// the index builds they trigger), so it is zeroed before rendering.
func tripComparable(err error) string {
	if err == nil {
		return ""
	}
	var le *guard.LimitError
	if errors.As(err, &le) {
		cp := *le
		cp.Usage.Plans = 0
		return cp.Error()
	}
	return err.Error()
}

// assertModesAgree runs the same evaluation with the cost-based
// planner on and off and asserts the observable outcome is identical:
// same database and same mode-comparable Stats on a clean run, same
// normalized trip error and same fact count on a budget trip. (A
// mid-merge Facts trip cuts one task's buffer at an enumeration-order-
// dependent point, so the tripping task's partial contents — but
// nothing else — may differ between join orders.)
func assertModesAgree(t *testing.T, prog *ast.Program, db *database.DB, opts eval.Options) {
	t.Helper()
	opts.NoPlanner = false
	base, baseStats, baseErr := eval.Eval(prog, db, opts)
	opts.NoPlanner = true
	out, stats, err := eval.Eval(prog, db, opts)
	if tripComparable(err) != tripComparable(baseErr) {
		t.Fatalf("planner-off err = %v, planner-on err = %v", err, baseErr)
	}
	if modeComparable(stats) != modeComparable(baseStats) {
		t.Errorf("planner-off stats = %+v, planner-on stats = %+v",
			modeComparable(stats), modeComparable(baseStats))
	}
	if out.FactCount() != base.FactCount() {
		t.Errorf("planner-off facts = %d, planner-on facts = %d", out.FactCount(), base.FactCount())
	}
	if err == nil && out.String() != base.String() {
		t.Errorf("planner-off output differs from planner-on:\n%s\nvs\n%s", out, base)
	}
}

// TestPlannerOffDifferentialTestdata runs every testdata program over
// random databases with the planner on and off, in both semi-naive and
// naive strategies, and additionally pins the planner-off engine's own
// worker-count independence.
func TestPlannerOffDifferentialTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.dl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.ProgramUnvalidated(string(src))
		if err != nil || len(prog.Rules) == 0 || prog.Validate() != nil {
			continue // fact files and non-program data
		}
		for seed := int64(0); seed < 3; seed++ {
			assertModesAgree(t, prog, edbFor(prog, seed, 5, 12), eval.Options{})
			assertModesAgree(t, prog, edbFor(prog, seed, 5, 12), eval.Options{Naive: true})
			assertWorkersAgree(t, prog, edbFor(prog, seed, 5, 12), eval.Options{NoPlanner: true})
		}
	}
}

// TestPlannerOffDifferentialBudgetTrips asserts budget trips land at
// the same point in both modes: same round, same normalized error,
// same fact/step accounting — for fact limits and step limits, and for
// every worker count within the planner-off mode.
func TestPlannerOffDifferentialBudgetTrips(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := gen.ChainGraph(30)
	for _, limit := range []int{1, 7, 50, 200} {
		assertModesAgree(t, prog, db, eval.Options{MaxFacts: limit})
		assertWorkersAgree(t, prog, db, eval.Options{MaxFacts: limit, NoPlanner: true})
	}
	for _, limit := range []int64{1, 100, 5000} {
		assertModesAgree(t, prog, db, eval.Options{Budget: guard.Budget{MaxSteps: limit}})
	}
}

// TestPlanCacheStableRounds pins the plan cache's behavior over a long
// fixpoint: transitive closure of a chain runs one delta task per round
// against a store whose shape stabilizes quickly, so almost every round
// hits the cache, replans happen only when the stats epoch moves
// (power-of-two growth crossings of p), and every miss — and only a
// miss — is charged to the budget's Plans dimension.
func TestPlanCacheStableRounds(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	_, stats, err := eval.Eval(prog, gen.ChainGraph(120), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 runs two full-store tasks; every later round exactly one
	// delta task.
	total := stats.PlanCacheHits + stats.PlanCacheMisses
	if want := uint64(stats.Iterations) + 1; total != want {
		t.Errorf("hits+misses = %d, want %d (one task per round plus round 1's extra)", total, want)
	}
	// Three distinct plan shapes exist (two full-round, one delta), so
	// every miss beyond the first three is a replan at a new epoch.
	if stats.PlanCacheMisses != stats.PlanReplans+3 {
		t.Errorf("misses = %d, replans = %d; want misses == replans + 3 shapes",
			stats.PlanCacheMisses, stats.PlanReplans)
	}
	// Stable rounds must reuse cached plans: the store's shape changes
	// O(log derived) times, not once per round.
	if stats.PlanCacheHits < 4*stats.PlanCacheMisses {
		t.Errorf("hit rate too low: %d hits, %d misses over %d rounds",
			stats.PlanCacheHits, stats.PlanCacheMisses, stats.Iterations)
	}
	if got := uint64(stats.Budget.Plans); got != stats.PlanCacheMisses {
		t.Errorf("budget charged %d plans, want one per cache miss (%d)", got, stats.PlanCacheMisses)
	}
}

// TestStarJoinPlannedBeatsFixedOrder is the planner's reason to exist,
// measured structurally rather than by wall clock: on a star join with
// the selective atom textually last, the planned order must touch at
// most half the intermediate rows the fixed left-to-right order does
// (the generator's keys/selKeys ratio makes the true gap ~30x), while
// deriving exactly the same facts.
func TestStarJoinPlannedBeatsFixedOrder(t *testing.T) {
	prog, db := gen.StarJoin(3, 120, 2, 4)
	_, on, exOn, err := eval.EvalExplain(prog, db, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, off, exOff, err := eval.EvalExplain(prog, db, eval.Options{NoPlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Derived != off.Derived || on.Firings != off.Firings {
		t.Fatalf("modes disagree on the fixpoint: derived %d/%d, firings %d/%d",
			on.Derived, off.Derived, on.Firings, off.Firings)
	}
	onRows, offRows := totalActual(exOn), totalActual(exOff)
	if onRows == 0 || offRows < 2*onRows {
		t.Errorf("planned order saves no work: %d rows planned vs %d fixed", onRows, offRows)
	}
	// The chosen join tree must open at the selective atom even though
	// it is textually last.
	txt := exOn.Rules[0].Plans[0].Text
	if i, j := strings.Index(txt, "sel("), strings.Index(txt, "d1("); i < 0 || j < 0 || i > j {
		t.Errorf("planned join tree does not start at the selective atom:\n%s", txt)
	}
}

// totalActual sums the per-step actual row counts over every plan in
// the report — the evaluation's total intermediate-result volume.
func totalActual(ex *eval.Explain) uint64 {
	var n uint64
	for _, re := range ex.Rules {
		for _, pe := range re.Plans {
			for _, v := range pe.Actual {
				n += v
			}
		}
	}
	return n
}

// FuzzPlannedEval fuzzes the planner differential: for any program the
// parser accepts and any random database, planner-off evaluation at 1
// and 4 workers is observably identical to planner-on — same fixpoint,
// same mode-comparable stats, same normalized (possibly budget-trip)
// error.
func FuzzPlannedEval(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.dl"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), int64(1))
	}
	f.Add("p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).", int64(7))
	f.Add("q(X) :- a(X, Y1), b(X, Y2), s(X).", int64(3))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		prog, err := parser.ProgramUnvalidated(src)
		if err != nil || prog.Validate() != nil || len(prog.Rules) == 0 {
			return
		}
		db := edbFor(prog, seed, 4, 8)
		base, baseStats, baseErr := eval.Eval(prog, db, eval.Options{MaxFacts: 2000, Workers: 1})
		for _, w := range []int{1, 4} {
			out, stats, err := eval.Eval(prog, db, eval.Options{MaxFacts: 2000, Workers: w, NoPlanner: true})
			if tripComparable(err) != tripComparable(baseErr) {
				t.Fatalf("workers=%d planner-off err = %v, planner-on err = %v", w, err, baseErr)
			}
			if modeComparable(stats) != modeComparable(baseStats) {
				t.Fatalf("workers=%d stats = %+v, want %+v", w, modeComparable(stats), modeComparable(baseStats))
			}
			if out.FactCount() != base.FactCount() {
				t.Fatalf("workers=%d facts = %d, want %d", w, out.FactCount(), base.FactCount())
			}
			if err == nil && out.String() != base.String() {
				t.Fatalf("workers=%d planner-off output differs:\n%s\nvs\n%s", w, out, base)
			}
		}
	})
}
