package eval

import (
	"context"
	"fmt"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/guard"
)

// Incremental view maintenance entry points. The algorithm lives in
// internal/ivm, which evaluates through this package's machinery; the
// registration indirection below breaks the cycle the same way the
// static optimizer's hook does (optimize.go).

// UpdateStats reports the work one incremental update (Insert or
// Retract) performed, the maintenance analogue of Stats. Every counter
// is accumulated at single-threaded points in canonical order, so —
// like Stats — an update's UpdateStats are bit-identical for every
// worker count.
type UpdateStats struct {
	// RowsInserted counts rows newly added to the live database:
	// admitted base facts plus derived rows whose support went 0 →
	// positive.
	RowsInserted int
	// RowsDeleted counts rows physically removed: retracted base facts
	// plus derived rows whose support reached zero and survived no
	// rederivation.
	RowsDeleted int
	// Rederived counts overdeleted rows the rederivation pass revived
	// (they kept alternative support not routed through a deleted row).
	Rederived int
	// CountUpdates counts support-count mutations applied — the "rows
	// touched" measure of an update, charged against the budget's
	// Maintained dimension.
	CountUpdates int64
	// StrataRun counts strata whose rules actually fired; unaffected
	// strata are skipped wholesale.
	StrataRun int
	// Rounds counts delta rounds executed across all strata run.
	Rounds int
	// Firings counts rule-body matches enumerated by the update.
	Firings int
	// Budget is the maintainer's cumulative guard consumption after the
	// update (shared across the handle's lifetime, like one evaluation).
	Budget guard.Usage
}

// String renders the update account on one line, REPL-style.
func (u UpdateStats) String() string {
	return fmt.Sprintf("%d rows in, %d rows out, %d rederived, %d count updates, %d strata, %d rounds, %d firings",
		u.RowsInserted, u.RowsDeleted, u.Rederived, u.CountUpdates, u.StrataRun, u.Rounds, u.Firings)
}

// Maintainer is the incremental-maintenance implementation installed by
// internal/ivm. Facts are ground atoms; both methods run the counting
// delta algorithm over the affected strata only and leave the live
// database at exactly the fixpoint a from-scratch evaluation of
// (base ± facts) would produce.
type Maintainer interface {
	Insert(facts []ast.Atom) (UpdateStats, error)
	Retract(facts []ast.Atom) (UpdateStats, error)
	// DB returns the live maintained database (base facts plus every
	// derived fact, with support counts on IDB relations). Callers must
	// treat it as read-only; it is only valid between updates.
	DB() *database.DB
	// Base returns the asserted base database: the facts inserted and
	// not retracted, with no derived rows. Read-only, valid between
	// updates; re-evaluating the program over a clone of it reproduces
	// DB, which is how recovery is verified.
	Base() *database.DB
}

// Checkpointer is implemented by durable maintainers: Checkpoint
// forces a snapshot now (full state written, WAL truncated) instead of
// waiting for the size threshold.
type Checkpointer interface {
	Checkpoint() error
}

// TaggedMaintainer is implemented by durable maintainers that record a
// client idempotency tag with each committed batch. A serving front end
// uses it for exactly-once retries: a batch retried with a (client,
// clientSeq) at or below ClientSeq has already been acknowledged and
// must not be re-applied.
type TaggedMaintainer interface {
	InsertTagged(facts []ast.Atom, client string, clientSeq uint64) (UpdateStats, error)
	RetractTagged(facts []ast.Atom, client string, clientSeq uint64) (UpdateStats, error)
	ClientSeq(client string) (uint64, bool)
	Clients() map[string]uint64
}

// ContextSetter is implemented by maintainers whose updates can be
// bounded by a per-update context (deadline propagation from a serving
// front end into the maintenance cascade).
type ContextSetter interface {
	SetUpdateContext(ctx context.Context)
}

// MaintainerFactory builds a Maintainer: it runs the initial fixpoint
// of prog over edb (reporting its Stats) and attaches support counts.
type MaintainerFactory func(prog *ast.Program, edb *database.DB, opts Options) (Maintainer, Stats, error)

// DurableMaintainerFactory builds a Maintainer bound to an open
// durable store: recovered state is rebuilt (snapshot plus WAL tail,
// or an initial fixpoint for a fresh store) and every later committed
// update is logged through the store.
type DurableMaintainerFactory func(prog *ast.Program, d *database.Durable, opts Options) (Maintainer, Stats, error)

// maintainerFactory is the installed hook; nil until internal/ivm is
// imported.
var maintainerFactory MaintainerFactory

// durableFactory is the durable-mode hook, installed alongside.
var durableFactory DurableMaintainerFactory

// RegisterMaintainer installs the incremental maintenance factory.
// Called from internal/ivm's init; last registration wins.
func RegisterMaintainer(f MaintainerFactory) { maintainerFactory = f }

// RegisterDurableMaintainer installs the durable maintenance factory.
// Called from internal/ivm's init; last registration wins.
func RegisterDurableMaintainer(f DurableMaintainerFactory) { durableFactory = f }

// Handle is a maintained materialization of prog over a base database:
// the initial fixpoint is computed once, and Insert/Retract update it
// incrementally — delta rounds over the affected strata instead of a
// re-fixpoint, with per-row support counts driving retraction. At every
// point the live database, each update's UpdateStats, and any budget
// trip are bit-identical across worker counts, matching the engine's
// evaluation contract.
type Handle struct {
	m Maintainer
}

// Insert adds ground facts to the base database and propagates them
// through the materialization. Unknown predicates create new base
// relations. A budget trip returns a *guard.LimitError; the handle is
// then no longer consistent and must be discarded.
func (h *Handle) Insert(facts []ast.Atom) (UpdateStats, error) { return h.m.Insert(facts) }

// Retract removes ground facts from the base database and propagates
// the removal: support counts are decremented, rows losing all support
// are deleted, and rederivation revives rows with alternative
// derivations. Retracting an absent fact is a no-op. A budget trip
// returns a *guard.LimitError; the handle is then no longer consistent
// and must be discarded.
func (h *Handle) Retract(facts []ast.Atom) (UpdateStats, error) { return h.m.Retract(facts) }

// DB returns the live maintained database. Read-only; valid between
// updates.
func (h *Handle) DB() *database.DB { return h.m.DB() }

// Base returns the asserted base database (no derived rows).
// Read-only; valid between updates.
func (h *Handle) Base() *database.DB { return h.m.Base() }

// Checkpoint forces a snapshot on a durable handle: the full state is
// written as the next generation and the WAL truncated, so the next
// Open recovers without replaying. On an in-memory handle it is a
// no-op.
func (h *Handle) Checkpoint() error {
	if c, ok := h.m.(Checkpointer); ok {
		return c.Checkpoint()
	}
	return nil
}

// Seq returns the durable store's committed-batch sequence number: how
// many batches have ever been acknowledged durable, counting from the
// store's creation. 0 on an in-memory handle.
func (h *Handle) Seq() uint64 {
	if s, ok := h.m.(interface{ Seq() uint64 }); ok {
		return s.Seq()
	}
	return 0
}

// Close releases the durable store behind the handle (acknowledged
// commits are already fsynced); a no-op on in-memory handles. The
// handle must not be used afterwards.
func (h *Handle) Close() error {
	if c, ok := h.m.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// InsertTagged is Insert with a durable idempotency tag: the committed
// batch records (client, clientSeq), so after any crash or reconnect
// ClientSeq still reports the acknowledged pair. On a maintainer
// without tag support the facts are applied untagged.
func (h *Handle) InsertTagged(facts []ast.Atom, client string, clientSeq uint64) (UpdateStats, error) {
	if tm, ok := h.m.(TaggedMaintainer); ok {
		return tm.InsertTagged(facts, client, clientSeq)
	}
	return h.m.Insert(facts)
}

// RetractTagged is Retract with a durable idempotency tag; see
// InsertTagged.
func (h *Handle) RetractTagged(facts []ast.Atom, client string, clientSeq uint64) (UpdateStats, error) {
	if tm, ok := h.m.(TaggedMaintainer); ok {
		return tm.RetractTagged(facts, client, clientSeq)
	}
	return h.m.Retract(facts)
}

// ClientSeq reports the durable idempotency table's entry for client:
// the highest client sequence ever committed under that ID. (0, false)
// when the client is unknown or the handle has no durable store.
func (h *Handle) ClientSeq(client string) (uint64, bool) {
	if tm, ok := h.m.(TaggedMaintainer); ok {
		return tm.ClientSeq(client)
	}
	return 0, false
}

// Clients returns the durable idempotency table (client ID → highest
// committed client sequence); nil without a durable store.
func (h *Handle) Clients() map[string]uint64 {
	if tm, ok := h.m.(TaggedMaintainer); ok {
		return tm.Clients()
	}
	return nil
}

// SetUpdateContext bounds later Insert/Retract calls with ctx: an
// expired context rejects the update up front (handle intact), and a
// cancellation mid-cascade aborts it like a budget trip (handle
// poisoned — the caller must rebuild, see Err). nil clears the bound.
func (h *Handle) SetUpdateContext(ctx context.Context) {
	if cs, ok := h.m.(ContextSetter); ok {
		cs.SetUpdateContext(ctx)
	}
}

// Err returns the error that poisoned the handle — a budget trip,
// cancellation, or I/O failure mid-update left the materialization
// inconsistent — or nil while the handle is healthy. A poisoned handle
// refuses further updates; rebuild it from the durable store (whose
// state is exactly the acknowledged batches) or from Base.
func (h *Handle) Err() error {
	if b, ok := h.m.(interface{ Broken() error }); ok {
		return b.Broken()
	}
	return nil
}

// Maintain computes the initial fixpoint of prog over edb and returns a
// handle for incremental updates, plus the initial evaluation's Stats.
// The input database is not modified. It requires internal/ivm to be
// linked in (it registers itself via RegisterMaintainer) and rejects
// programs outside the maintainable fragment — rules whose head
// variables the body does not bind (active-domain semantics would make
// retraction non-local).
func Maintain(prog *ast.Program, edb *database.DB, opts Options) (*Handle, Stats, error) {
	if maintainerFactory == nil {
		return nil, Stats{}, fmt.Errorf("eval: Maintain requires the incremental maintainer (import datalogeq/internal/ivm)")
	}
	m, stats, err := maintainerFactory(prog, edb, opts)
	if err != nil {
		return nil, stats, err
	}
	return &Handle{m: m}, stats, nil
}

// MaintainDurable binds a maintained materialization of prog to an
// open durable store and returns a handle whose committed updates
// survive crashes. A fresh store gets an initial fixpoint over the
// empty database (insert the base facts through the handle); a
// recovered store is rebuilt from its snapshot plus WAL tail — by the
// engine's determinism contract, into exactly the state the crashed
// process held after its last acknowledged commit. Stats are those of
// the initial fixpoint (zero when recovery skipped it). The handle
// takes ownership of d; do not use d directly afterwards.
func MaintainDurable(prog *ast.Program, d *database.Durable, opts Options) (*Handle, Stats, error) {
	if durableFactory == nil {
		return nil, Stats{}, fmt.Errorf("eval: MaintainDurable requires the incremental maintainer (import datalogeq/internal/ivm)")
	}
	m, stats, err := durableFactory(prog, d, opts)
	if err != nil {
		return nil, stats, err
	}
	return &Handle{m: m}, stats, nil
}
