// Package eval implements bottom-up evaluation of Datalog programs: the
// semantics Q_Π(D) = ∪_i Q^i_Π(D) of paper §2.1. Both naive and
// semi-naive fixpoint strategies are provided; semi-naive is the default.
//
// Rules with empty bodies or with head variables not bound by the body
// (Example 6.2 of the paper uses "dist0(x, x) :- .") are evaluated with
// active-domain semantics: unbound head variables range over the set of
// constants occurring in the database or the program.
package eval

import (
	"fmt"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
)

// Stats reports work done by an evaluation.
type Stats struct {
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Derived is the number of distinct IDB facts derived.
	Derived int
	// Firings is the number of rule-body matches that produced a
	// (possibly duplicate) head fact.
	Firings int
}

// Options configure evaluation.
type Options struct {
	// Naive selects the naive strategy (recompute every rule against
	// the full store each round) instead of semi-naive.
	Naive bool
	// MaxFacts aborts evaluation once more than this many IDB facts
	// have been derived; 0 means unlimited. Datalog evaluation always
	// terminates, but a bound is useful in adversarial benchmarks.
	MaxFacts int
}

// Eval computes the least fixpoint of prog over edb and returns a new
// database containing all EDB facts plus every derived IDB fact. The
// input database is not modified.
func Eval(prog *ast.Program, edb *database.DB, opts Options) (*database.DB, Stats, error) {
	if err := prog.Validate(); err != nil {
		return nil, Stats{}, err
	}
	e := &evaluator{
		prog:  prog,
		total: edb.Clone(),
		idb:   prog.IDBPreds(),
		opts:  opts,
	}
	e.domain = activeDomain(prog, edb)
	stats, err := e.run()
	return e.total, stats, err
}

// Goal evaluates prog over edb and returns the relation computed for the
// goal predicate (empty if the goal derives nothing).
func Goal(prog *ast.Program, edb *database.DB, goal string, opts Options) (*database.Relation, Stats, error) {
	out, stats, err := Eval(prog, edb, opts)
	if err != nil {
		return nil, stats, err
	}
	if r := out.Lookup(goal); r != nil {
		return r, stats, nil
	}
	arity := prog.GoalArity(goal)
	if arity < 0 {
		return nil, stats, fmt.Errorf("eval: goal predicate %q does not occur in program", goal)
	}
	return database.NewRelation(arity), stats, nil
}

func activeDomain(prog *ast.Program, edb *database.DB) []string {
	seen := make(map[string]bool)
	out := edb.ActiveDomain()
	for _, c := range out {
		seen[c] = true
	}
	addAtom := func(a ast.Atom) {
		for _, t := range a.Args {
			if t.Kind == ast.Const && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	for _, r := range prog.Rules {
		addAtom(r.Head)
		for _, a := range r.Body {
			addAtom(a)
		}
	}
	return out
}

type evaluator struct {
	prog   *ast.Program
	total  *database.DB
	idb    map[ast.PredSym]bool
	domain []string
	opts   Options

	// delta holds the facts derived in the previous round, per
	// predicate name (semi-naive only).
	delta map[string][]database.Tuple

	// indexes caches join indexes per round; see matcher.
	indexes map[indexKey]index

	stats Stats
}

func (e *evaluator) run() (Stats, error) {
	// Round 0: evaluate every rule against the initial store.
	first := e.applyAllRules(nil)
	e.delta = first
	e.stats.Iterations = 1
	for len(e.delta) > 0 {
		if e.opts.MaxFacts > 0 && e.stats.Derived > e.opts.MaxFacts {
			return e.stats, fmt.Errorf("eval: derived more than %d facts", e.opts.MaxFacts)
		}
		var next map[string][]database.Tuple
		if e.opts.Naive {
			next = e.applyAllRules(nil)
		} else {
			next = e.applyAllRules(e.delta)
		}
		e.delta = next
		e.stats.Iterations++
	}
	return e.stats, nil
}

// applyAllRules evaluates every rule once. With delta == nil every rule
// is evaluated against the full store. With a non-nil delta, rules whose
// bodies contain IDB atoms are evaluated once per IDB position, with that
// position restricted to the delta of its predicate (standard semi-naive
// rewriting); rules without IDB subgoals are skipped, since they can
// derive nothing new after round 0.
func (e *evaluator) applyAllRules(delta map[string][]database.Tuple) map[string][]database.Tuple {
	e.indexes = make(map[indexKey]index)
	derived := make(map[string][]database.Tuple)
	for _, rule := range e.prog.Rules {
		if delta == nil {
			e.applyRule(rule, -1, nil, derived)
			continue
		}
		for i, a := range rule.Body {
			if !e.idb[a.Sym()] {
				continue
			}
			d := delta[a.Pred]
			if len(d) == 0 {
				continue
			}
			e.applyRule(rule, i, d, derived)
		}
	}
	return derived
}

// applyRule joins the body of rule and adds resulting head facts to the
// store, recording genuinely new facts in derived. If deltaPos >= 0, the
// body atom at that position matches only deltaTuples.
func (e *evaluator) applyRule(rule ast.Rule, deltaPos int, deltaTuples []database.Tuple, derived map[string][]database.Tuple) {
	env := make(map[string]string)
	e.joinFrom(rule, 0, deltaPos, deltaTuples, env, derived)
}

func (e *evaluator) joinFrom(rule ast.Rule, pos, deltaPos int, deltaTuples []database.Tuple, env map[string]string, derived map[string][]database.Tuple) {
	if pos == len(rule.Body) {
		e.emitHead(rule, env, derived)
		return
	}
	atom := rule.Body[pos]
	var tuples []database.Tuple
	if pos == deltaPos {
		tuples = e.matchDelta(atom, deltaTuples, env)
	} else {
		tuples = e.matchTotal(atom, env)
	}
	for _, t := range tuples {
		bound := bindAtom(atom, t, env)
		e.joinFrom(rule, pos+1, deltaPos, deltaTuples, env, derived)
		for _, v := range bound {
			delete(env, v)
		}
	}
}

// bindAtom extends env with the bindings needed to match atom against
// tuple t (which is assumed to match all already-bound positions) and
// returns the variables newly bound.
func bindAtom(atom ast.Atom, t database.Tuple, env map[string]string) []string {
	var bound []string
	for i, arg := range atom.Args {
		if arg.Kind == ast.Var {
			if _, ok := env[arg.Name]; !ok {
				env[arg.Name] = t[i]
				bound = append(bound, arg.Name)
			}
		}
	}
	return bound
}

// emitHead instantiates the head under env; unbound head variables range
// over the active domain.
func (e *evaluator) emitHead(rule ast.Rule, env map[string]string, derived map[string][]database.Tuple) {
	head := rule.Head
	tuple := make(database.Tuple, len(head.Args))
	var unboundPos []int
	unboundVars := make(map[string][]int)
	for i, arg := range head.Args {
		if arg.Kind == ast.Const {
			tuple[i] = arg.Name
			continue
		}
		if c, ok := env[arg.Name]; ok {
			tuple[i] = c
			continue
		}
		unboundPos = append(unboundPos, i)
		unboundVars[arg.Name] = append(unboundVars[arg.Name], i)
	}
	if len(unboundPos) == 0 {
		e.addFact(head.Pred, tuple, derived)
		return
	}
	// Active-domain semantics for unsafe heads: enumerate assignments
	// to the distinct unbound variables.
	vars := make([]string, 0, len(unboundVars))
	for v := range unboundVars {
		vars = append(vars, v)
	}
	var assign func(i int)
	assign = func(i int) {
		if i == len(vars) {
			e.addFact(head.Pred, tuple.Clone(), derived)
			return
		}
		for _, c := range e.domain {
			for _, pos := range unboundVars[vars[i]] {
				tuple[pos] = c
			}
			assign(i + 1)
		}
	}
	assign(0)
}

func (e *evaluator) addFact(pred string, t database.Tuple, derived map[string][]database.Tuple) {
	e.stats.Firings++
	if e.total.Add(pred, t) {
		e.stats.Derived++
		derived[pred] = append(derived[pred], t)
	}
}
