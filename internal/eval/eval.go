// Package eval implements bottom-up evaluation of Datalog programs: the
// semantics Q_Π(D) = ∪_i Q^i_Π(D) of paper §2.1. Both naive and
// semi-naive fixpoint strategies are provided; semi-naive is the default.
//
// Rules with empty bodies or with head variables not bound by the body
// (Example 6.2 of the paper uses "dist0(x, x) :- .") are evaluated with
// active-domain semantics: unbound head variables range over the set of
// constants occurring in the database or the program.
//
// The hot path runs entirely on the storage engine's interned IDs:
// rules are compiled to slot form (compile.go), each (rule ×
// delta-position) task is planned by the cost-based join planner
// (internal/plan) into an operator tree of index probes and filtered
// scans ordered by live cardinality statistics — plans are cached by
// (rule fingerprint, stats epoch), so stable rounds replan nothing —
// join indexes live on the relations and are maintained incrementally
// as facts are derived, and semi-naive deltas are windows of row IDs
// into each relation's slab rather than copied tuple slices.
//
// Evaluation is parallel (exec.go): each fixpoint round freezes the
// store, fans the rule firings out over Options.Workers goroutines that
// probe the frozen snapshot lock-free, and applies the buffered
// derivations in a single-threaded, canonically ordered merge. The
// output database, Stats, and MaxFacts abort point are bit-identical
// for every worker count.
package eval

import (
	"context"
	"fmt"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/guard"
	"datalogeq/internal/plan"
)

// Stats reports work done by an evaluation.
type Stats struct {
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Derived is the number of distinct IDB facts derived.
	Derived int
	// Firings is the number of rule-body matches that produced a
	// (possibly duplicate) head fact.
	Firings int

	// Storage-engine breakdown for this evaluation.

	// IndexHits counts join lookups answered by a persistent index.
	IndexHits uint64
	// IndexBuilds counts full-scan index constructions; bounded by the
	// number of distinct (predicate, column-mask) pairs in the program,
	// independent of rounds or data size.
	IndexBuilds uint64
	// IndexAppends counts incremental index maintenance operations:
	// one per (inserted row, live index on its relation).
	IndexAppends uint64
	// SlabBytes is the columnar-slab footprint of the result database.
	SlabBytes int64
	// InternedConstants is the size of the shared symbol table after
	// evaluation.
	InternedConstants int

	// Plan-cache behavior of the cost-based planner: hits, misses
	// (plan constructions), and replans (a shape planned again because
	// the store's stats epoch moved). On a stable store — no relation
	// creations, power-of-two growth crossings, or index builds between
	// rounds — every task hits the cache and Replans stays flat.
	PlanCacheHits   uint64
	PlanCacheMisses uint64
	PlanReplans     uint64

	// Budget is the guard-layer consumption snapshot: facts, steps, and
	// plans charged against Options.Budget (counters are deterministic
	// across worker counts; Wall is not).
	Budget guard.Usage
}

// Options configure evaluation.
type Options struct {
	// Naive selects the naive strategy (recompute every rule against
	// the full store each round) instead of semi-naive.
	Naive bool
	// MaxFacts aborts evaluation once more than this many IDB facts
	// have been derived; 0 means unlimited. Deprecated compatibility
	// shim: it is folded into Budget.MaxFacts (which wins when both are
	// set) so eval shares the guard accounting path with the decision
	// procedures. The bound is enforced at every merge in canonical
	// order, so the abort round and the reported fact count are
	// identical for every worker count.
	MaxFacts int
	// Budget declares guard-layer resource limits: derived facts
	// (Facts), rule-body firings (Steps), and wall time, all enforced at
	// single-threaded points so trips are bit-identical for every worker
	// count. A trip aborts evaluation with a *guard.LimitError carrying
	// a progress snapshot; the partial database is still returned.
	Budget guard.Budget
	// NoPlanner disables cost-based join ordering: plans keep the
	// textual body order with the same index pushdown — the engine's
	// historical fixed left-to-right behavior. The fixpoint, Stats
	// counters (except index and plan-cache statistics), and budget
	// trip points are identical with and without the planner; the flag
	// exists for differential testing and plan-regression debugging.
	NoPlanner bool
	// Workers is the number of goroutines that fire rules within a
	// round; 0 or negative means runtime.GOMAXPROCS(0). Results are
	// bit-identical for every value.
	Workers int
	// Optimize runs the internal/opt static optimizer over the program
	// before compilation (requires that package to be linked in; it
	// registers itself via RegisterOptimizer) and evaluates the result
	// under its SCC-stratified schedule: each dependence-graph component
	// is fixpointed to completion in topological order instead of one
	// global round loop. The goal relation — and, when OptimizeGoal is
	// unset, the entire fixpoint — is identical with and without the
	// flag; Stats.Iterations counts the per-stratum rounds, so round
	// counts differ from the global loop. The schedule and every rewrite
	// are computed single-threaded in canonical order, so the
	// worker-count bit-determinism contract is unchanged.
	Optimize bool
	// OptimizeGoal names the goal predicate for Optimize's goal-directed
	// rewrites (dead-code elimination, constant propagation, recursion
	// elimination). When set, relations the goal does not depend on may
	// be absent from the output database; "" applies only
	// fixpoint-preserving rewrites.
	OptimizeGoal string
	// Ctx, when non-nil, cancels evaluation: long 2EXPTIME-ish runs
	// return Ctx.Err() promptly (workers poll a cancellation flag
	// between and within tasks) with a partial database.
	Ctx context.Context
}

// window is a half-open range [lo, hi) of row IDs in a relation's slab:
// the facts a predicate gained during one fixpoint round.
type window struct{ lo, hi int }

// budget folds the deprecated MaxFacts shim into the guard budget:
// Budget.MaxFacts wins when both are set.
func (o Options) budget() guard.Budget {
	b := o.Budget
	if b.MaxFacts == 0 && o.MaxFacts > 0 {
		b.MaxFacts = int64(o.MaxFacts)
	}
	return b
}

// Eval computes the least fixpoint of prog over edb and returns a new
// database containing all EDB facts plus every derived IDB fact. The
// input database is not modified.
//
// A budget trip returns the partial database together with a
// *guard.LimitError; an internal panic (in this package or a worker
// goroutine) is recovered and returned as a *guard.PanicError — Eval
// never crashes the process.
func Eval(prog *ast.Program, edb *database.DB, opts Options) (db *database.DB, stats Stats, err error) {
	db, stats, _, err = evalWith(prog, edb, opts, false)
	return db, stats, err
}

// evalWith is the shared core of Eval and EvalExplain; explain turns on
// the per-step row instrumentation the Explain report is built from.
func evalWith(prog *ast.Program, edb *database.DB, opts Options, explain bool) (db *database.DB, stats Stats, ex *Explain, err error) {
	defer guard.Recover(&err, "eval")
	if err := prog.Validate(); err != nil {
		return nil, Stats{}, nil, err
	}
	if err := validateArities(prog, edb); err != nil {
		return nil, Stats{}, nil, err
	}
	prog, optSummary, err := opts.optimize(prog)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	var strata []ast.Stratum
	if opts.Optimize {
		strata = prog.Strata()
	}
	rules, maxVars := compileRules(prog)
	e := &evaluator{
		prog:    prog,
		rules:   rules,
		maxVars: maxVars,
		total:   edb.Clone(),
		opts:    opts,
		meter:   opts.budget().Started().Meter(),
		planner: &plan.Planner{Fixed: opts.NoPlanner},
		frozen:  make(map[string]int),
		explain: explain,
		strata:  strata,
	}
	e.domain = activeDomainIDs(prog, edb)
	stats, err = e.run()
	st := e.total.StorageStats()
	stats.IndexHits = st.IndexHits + e.probeHits
	stats.IndexBuilds = st.IndexBuilds
	stats.IndexAppends = st.IndexAppends
	stats.SlabBytes = st.SlabBytes
	stats.InternedConstants = database.InternedCount()
	stats.PlanCacheHits = e.planner.Hits
	stats.PlanCacheMisses = e.planner.Misses
	stats.PlanReplans = e.planner.Replans
	stats.Budget = e.meter.Usage()
	if explain {
		ex = e.buildExplain(stats)
		ex.Opt = optSummary
	}
	return e.total, stats, ex, err
}

// Goal evaluates prog over edb and returns the relation computed for the
// goal predicate (empty if the goal derives nothing).
func Goal(prog *ast.Program, edb *database.DB, goal string, opts Options) (*database.Relation, Stats, error) {
	out, stats, err := Eval(prog, edb, opts)
	if err != nil {
		return nil, stats, err
	}
	if r := out.Lookup(goal); r != nil {
		return r, stats, nil
	}
	arity := prog.GoalArity(goal)
	if arity < 0 {
		return nil, stats, fmt.Errorf("eval: goal predicate %q does not occur in program", goal)
	}
	return database.NewRelation(arity), stats, nil
}

// validateArities rejects programs whose predicate arities disagree
// with the database's relations. Without this check an arity clash
// either panicked deep in the storage layer (head collision) or
// silently matched rows of the wrong width (body atom), both reachable
// from ordinary user input: a program file and a fact file that
// disagree about a predicate.
func validateArities(prog *ast.Program, edb *database.DB) error {
	checked := make(map[string]bool)
	check := func(a ast.Atom) error {
		if checked[a.Pred] {
			return nil
		}
		checked[a.Pred] = true
		if r := edb.Lookup(a.Pred); r != nil && r.Arity() != len(a.Args) {
			at := ""
			if a.Pos.IsValid() {
				at = " (program position " + a.Pos.String() + ")"
			}
			return fmt.Errorf("eval: predicate %s has arity %d in the program but arity %d in the database%s",
				a.Pred, len(a.Args), r.Arity(), at)
		}
		return nil
	}
	for _, r := range prog.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// activeDomainIDs interns the active domain of the evaluation: the
// database's constants (in sorted order, for deterministic enumeration)
// followed by the program's constants in order of appearance.
func activeDomainIDs(prog *ast.Program, edb *database.DB) []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, c := range edb.ActiveDomain() {
		id := database.Intern(c)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	addAtom := func(a ast.Atom) {
		for _, t := range a.Args {
			if t.Kind == ast.Const {
				id := database.Intern(t.Name)
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	for _, r := range prog.Rules {
		addAtom(r.Head)
		for _, a := range r.Body {
			addAtom(a)
		}
	}
	return out
}
