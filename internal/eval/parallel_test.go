package eval_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"
)

// statsComparable strips the Stats fields that are not functions of
// this evaluation alone: the shared interner only grows, so
// InternedConstants reflects every string any earlier test interned,
// and the budget's wall-clock component is real time.
func statsComparable(s eval.Stats) eval.Stats {
	s.InternedConstants = 0
	s.Budget.Wall = 0
	return s
}

// assertWorkersAgree runs the same evaluation with 1, 2 and 8 workers
// and asserts the outputs are bit-identical: same database rendering
// (which includes insertion order of every relation), same Stats, same
// error. This is the determinism contract of the parallel engine.
func assertWorkersAgree(t *testing.T, prog *ast.Program, db *database.DB, opts eval.Options) {
	t.Helper()
	opts.Workers = 1
	base, baseStats, baseErr := eval.Eval(prog, db, opts)
	for _, w := range []int{2, 8} {
		opts.Workers = w
		out, stats, err := eval.Eval(prog, db, opts)
		if (err == nil) != (baseErr == nil) || (err != nil && err.Error() != baseErr.Error()) {
			t.Fatalf("workers=%d: err = %v, want %v", w, err, baseErr)
		}
		if statsComparable(stats) != statsComparable(baseStats) {
			t.Errorf("workers=%d: stats = %+v, want %+v", w, statsComparable(stats), statsComparable(baseStats))
		}
		if out.String() != base.String() {
			t.Errorf("workers=%d: output differs from sequential:\n%s\nvs\n%s", w, out, base)
		}
	}
}

// edbFor builds a deterministic random database for a program's EDB
// predicates.
func edbFor(prog *ast.Program, seed int64, domain, facts int) *database.DB {
	preds := make(map[string]int)
	var syms []ast.PredSym
	for sym := range prog.EDBPreds() {
		syms = append(syms, sym)
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Name != syms[j].Name {
			return syms[i].Name < syms[j].Name
		}
		return syms[i].Arity < syms[j].Arity
	})
	for _, sym := range syms {
		if _, ok := preds[sym.Name]; !ok {
			preds[sym.Name] = sym.Arity
		}
	}
	return gen.RandomDB(rand.New(rand.NewSource(seed)), preds, domain, facts)
}

// TestParallelMatchesSequentialTestdata runs every testdata program
// over random databases and checks worker-count independence.
func TestParallelMatchesSequentialTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.dl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.ProgramUnvalidated(string(src))
		if err != nil || len(prog.Rules) == 0 || prog.Validate() != nil {
			continue // fact files and non-program data
		}
		for seed := int64(0); seed < 3; seed++ {
			assertWorkersAgree(t, prog, edbFor(prog, seed, 5, 12), eval.Options{})
			assertWorkersAgree(t, prog, edbFor(prog, seed, 5, 12), eval.Options{Naive: true})
		}
	}
}

// TestParallelMatchesSequentialUnboundHeads covers the active-domain
// enumeration path (Example 6.2: head variables unbound by the body),
// where firing counts are domain-dependent.
func TestParallelMatchesSequentialUnboundHeads(t *testing.T) {
	prog := parser.MustProgram(`
		dist0(X, X) :- .
		dist(X, Y) :- dist0(X, Y).
		dist(X, Y) :- e(X, Z), dist(Z, Y).
	`)
	db := gen.ChainGraph(6)
	assertWorkersAgree(t, prog, db, eval.Options{})
}

// TestParallelMaxFactsAbort asserts the MaxFacts abort is enforced at
// the same round and fact count for every worker count: identical
// error, Derived, Iterations, and Firings.
func TestParallelMaxFactsAbort(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := gen.ChainGraph(30)
	for _, limit := range []int{1, 7, 50, 200} {
		assertWorkersAgree(t, prog, db, eval.Options{MaxFacts: limit})
	}
}

// TestEvalCancellation exercises Options.Ctx: a cancelled context stops
// evaluation with the context's error.
func TestEvalCancellation(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		_, _, err := eval.Eval(prog, gen.ChainGraph(10), eval.Options{Ctx: ctx, Workers: w})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
	// A deadline either completes the run or aborts it with the
	// deadline error — never anything else.
	tctx, tcancel := context.WithTimeout(context.Background(), 1)
	defer tcancel()
	out, _, err := eval.Eval(prog, gen.ChainGraph(300), eval.Options{Ctx: tctx, Workers: 2})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout eval: err = %v", err)
	}
	if out == nil {
		t.Error("cancelled eval must still return the partial database")
	}
}

// FuzzParallelEval fuzzes the determinism contract: for any program the
// parser accepts and any random database over its EDB predicates,
// evaluation with 4 workers is bit-identical to 1 worker — same
// database, same stats, same (possibly MaxFacts) error.
func FuzzParallelEval(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.dl"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), int64(1))
	}
	f.Add("p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).", int64(7))
	f.Add("d(X, X) :- .\nd(X, Y) :- e(X, Y), d(Y, Z).", int64(3))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		prog, err := parser.ProgramUnvalidated(src)
		if err != nil || prog.Validate() != nil || len(prog.Rules) == 0 {
			return
		}
		db := edbFor(prog, seed, 4, 8)
		// MaxFacts bounds adversarial blowups and simultaneously fuzzes
		// the deterministic-abort path.
		opts := eval.Options{MaxFacts: 2000, Workers: 1}
		base, baseStats, baseErr := eval.Eval(prog, db, opts)
		opts.Workers = 4
		out, stats, err := eval.Eval(prog, db, opts)
		if (err == nil) != (baseErr == nil) || (err != nil && err.Error() != baseErr.Error()) {
			t.Fatalf("err = %v, want %v", err, baseErr)
		}
		if statsComparable(stats) != statsComparable(baseStats) {
			t.Fatalf("stats = %+v, want %+v", statsComparable(stats), statsComparable(baseStats))
		}
		if out.String() != base.String() {
			t.Fatalf("parallel output differs:\n%s\nvs\n%s", out, base)
		}
	})
}
