package eval

import (
	"fmt"
	"strings"

	"datalogeq/internal/ast"
)

// OptSummary is the flat account of a static-optimization run carried
// by Explain: per-pass rule counts, the stratified schedule the engine
// executed, and the optimizer's notes (rewrites considered but not
// proven safe). It mirrors internal/opt's Report without importing it —
// the optimizer's proof search runs on the containment machinery, which
// itself evaluates queries through this package, so eval can only see
// the optimizer through the registration hook below.
type OptSummary struct {
	Passes   []OptPassStat
	Schedule string
	Notes    []string
}

// OptPassStat is one pipeline pass's before/after account.
type OptPassStat struct {
	Name                    string
	RulesBefore, RulesAfter int
	Rewrites                int
}

// String renders the summary for Explain: passes that changed
// something, the schedule, and the notes.
func (s *OptSummary) String() string {
	var b strings.Builder
	for _, p := range s.Passes {
		if p.Rewrites == 0 && p.RulesBefore == p.RulesAfter {
			continue
		}
		fmt.Fprintf(&b, "  pass %-16s %d -> %d rules, %d rewrite(s)\n",
			p.Name, p.RulesBefore, p.RulesAfter, p.Rewrites)
	}
	fmt.Fprintf(&b, "  schedule: %s\n", s.Schedule)
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Optimizer is the whole-program static-rewrite hook installed by
// internal/opt: it returns a semantics-preserving rewrite of prog for
// the given goal ("" = no goal-directed rewrites) plus a summary for
// Explain. The registration indirection breaks the import cycle
// opt → core → cq → eval.
type Optimizer func(prog *ast.Program, goal string) (*ast.Program, *OptSummary, error)

// optimizer is the installed hook; nil until internal/opt is imported.
var optimizer Optimizer

// RegisterOptimizer installs the static optimizer. Called from
// internal/opt's init; last registration wins.
func RegisterOptimizer(f Optimizer) { optimizer = f }

// optimize applies the registered optimizer for Options.Optimize and
// returns the program eval should compile. The stratified schedule is
// computed by the caller from the returned program.
func (o Options) optimize(prog *ast.Program) (*ast.Program, *OptSummary, error) {
	if !o.Optimize {
		return prog, nil, nil
	}
	if optimizer == nil {
		return nil, nil, fmt.Errorf("eval: Options.Optimize requires the static optimizer (import datalogeq/internal/opt)")
	}
	return optimizer(prog, o.OptimizeGoal)
}
