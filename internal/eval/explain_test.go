package eval_test

import (
	"strings"
	"testing"

	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"
)

// TestEvalExplainMatchesEval: the instrumented entry point must return
// exactly what Eval returns — the per-step counters ride inside the
// workers' existing buffers and change nothing observable.
func TestEvalExplainMatchesEval(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := gen.ChainGraph(12)
	base, baseStats, err := eval.Eval(prog, db, eval.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, ex, err := eval.EvalExplain(prog, db, eval.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != base.String() {
		t.Error("EvalExplain database differs from Eval's")
	}
	if statsComparable(stats) != statsComparable(baseStats) {
		t.Errorf("EvalExplain stats = %+v, want %+v", statsComparable(stats), statsComparable(baseStats))
	}
	if ex == nil || len(ex.Rules) != 2 {
		t.Fatalf("explain reports %d rules, want 2", len(ex.Rules))
	}
}

// TestEvalExplainRendering: the report names the delta position, the
// access paths, and the plan-cache totals, using source variable names.
func TestEvalExplainRendering(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	_, _, ex, err := eval.EvalExplain(prog, gen.ChainGraph(12), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	for _, want := range []string{
		"p(X, Y) :- e(X, Z), p(Z, Y).", // rule source text
		"delta at body atom 2",         // semi-naive window position
		"Δp(",                          // delta atom marked in the tree
		"probe",                        // index access path
		"est ",                         // cost-model estimate
		"act ",                         // actual rows
		"plan cache:",                  // cache totals footer
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain rendering lacks %q:\n%s", want, out)
		}
	}
}

// TestEvalExplainFixedMode: planner-off plans are flagged in the
// report, so a differential reader can tell the modes apart.
func TestEvalExplainFixedMode(t *testing.T) {
	prog := parser.MustProgram(`p(X, Y) :- e(X, Y).`)
	_, _, ex, err := eval.EvalExplain(prog, gen.ChainGraph(5), eval.Options{NoPlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.String(), "fixed order") {
		t.Errorf("fixed-order plan not flagged:\n%s", ex.String())
	}
}
