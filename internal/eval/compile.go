package eval

import (
	"datalogeq/internal/ast"
	"datalogeq/internal/database"
)

// Rule compilation: before evaluation every rule is lowered to a form
// that runs entirely on interned IDs. Variables become dense slots in a
// per-rule environment array, constants are interned once, and — since
// the join order is the fixed left-to-right body order — whether a
// variable occurrence is pre-bound, a fresh binding, or a repeat within
// its atom is decided statically here rather than per tuple.

// argOp classifies a compiled argument position.
type argOp uint8

const (
	// opConst: the position must equal an interned constant.
	opConst argOp = iota
	// opBound: the position must equal the value of an env slot bound
	// by an earlier body atom.
	opBound
	// opBind: first occurrence of a variable; matching binds its slot
	// from the row. In a compiled head, slot is instead the index of
	// the unbound-variable group the position belongs to.
	opBind
	// opCheck: a repeated fresh variable within the same atom; the
	// position must equal the atom's earlier position pos.
	opCheck
)

// carg is one compiled argument position.
type carg struct {
	op   argOp
	id   uint32 // opConst: interned constant
	slot int    // opBound/opBind: env slot (head opBind: group index)
	pos  int    // opCheck: earlier position bound by the same variable
}

// catom is a compiled body atom.
type catom struct {
	pred  string
	arity int
	// mask has bit i set iff position i is statically constrained
	// (constant or pre-bound variable); it keys the relation's
	// persistent index. Wide atoms (arity > 64) cannot be masked and
	// fall back to a linear scan.
	mask uint64
	wide bool
	args []carg
	// checks caches the opCheck constraints and binds the opBind
	// positions, so the matcher never rescans args.
	checks []checkStep
	binds  []bindStep
	idb    bool
}

type bindStep struct {
	pos  int
	slot int
}

type checkStep struct {
	pos, firstPos int
}

// chead is a compiled rule head.
type chead struct {
	pred string
	args []carg
	// unboundGroups lists, per distinct head variable not bound by the
	// body, the head positions it occupies. Such variables range over
	// the active domain (Example 6.2 semantics).
	unboundGroups [][]int
}

// crule is a compiled rule.
type crule struct {
	src   ast.Rule
	nvars int
	body  []catom
	head  chead
	// idbBody lists body positions with intensional predicates — the
	// delta positions of semi-naive evaluation.
	idbBody []int
}

// compileRules lowers every rule of prog and returns the compiled rules
// plus the largest environment size needed.
func compileRules(prog *ast.Program) ([]crule, int) {
	idb := prog.IDBPreds()
	rules := make([]crule, len(prog.Rules))
	maxVars := 0
	for i, r := range prog.Rules {
		rules[i] = compileRule(r, idb)
		if rules[i].nvars > maxVars {
			maxVars = rules[i].nvars
		}
	}
	return rules, maxVars
}

func compileRule(r ast.Rule, idb map[ast.PredSym]bool) crule {
	cr := crule{src: r}
	slots := make(map[string]int)
	bound := make(map[string]bool)
	for bi, a := range r.Body {
		ca := catom{
			pred:  a.Pred,
			arity: len(a.Args),
			wide:  len(a.Args) > 64,
			idb:   idb[a.Sym()],
		}
		firstPos := make(map[string]int)
		for i, t := range a.Args {
			switch t.Kind {
			case ast.Const:
				ca.args = append(ca.args, carg{op: opConst, id: database.Intern(t.Name)})
				if !ca.wide {
					ca.mask |= 1 << uint(i)
				}
			case ast.Var:
				if bound[t.Name] {
					ca.args = append(ca.args, carg{op: opBound, slot: slots[t.Name]})
					if !ca.wide {
						ca.mask |= 1 << uint(i)
					}
					continue
				}
				if p, ok := firstPos[t.Name]; ok {
					ca.args = append(ca.args, carg{op: opCheck, pos: p})
					continue
				}
				firstPos[t.Name] = i
				s, ok := slots[t.Name]
				if !ok {
					s = len(slots)
					slots[t.Name] = s
				}
				ca.args = append(ca.args, carg{op: opBind, slot: s})
			}
		}
		for i, arg := range ca.args {
			switch arg.op {
			case opCheck:
				ca.checks = append(ca.checks, checkStep{pos: i, firstPos: arg.pos})
			case opBind:
				ca.binds = append(ca.binds, bindStep{pos: i, slot: arg.slot})
			}
		}
		for v := range firstPos {
			bound[v] = true
		}
		if ca.idb {
			cr.idbBody = append(cr.idbBody, bi)
		}
		cr.body = append(cr.body, ca)
	}

	ch := chead{pred: r.Head.Pred}
	groups := make(map[string]int)
	for i, t := range r.Head.Args {
		switch t.Kind {
		case ast.Const:
			ch.args = append(ch.args, carg{op: opConst, id: database.Intern(t.Name)})
		case ast.Var:
			if bound[t.Name] {
				ch.args = append(ch.args, carg{op: opBound, slot: slots[t.Name]})
				continue
			}
			g, ok := groups[t.Name]
			if !ok {
				g = len(ch.unboundGroups)
				groups[t.Name] = g
				ch.unboundGroups = append(ch.unboundGroups, nil)
			}
			ch.unboundGroups[g] = append(ch.unboundGroups[g], i)
			ch.args = append(ch.args, carg{op: opBind, slot: g})
		}
	}
	cr.head = ch
	cr.nvars = len(slots)
	return cr
}
