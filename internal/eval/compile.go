package eval

import (
	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/plan"
)

// Rule compilation: before evaluation every rule is lowered to a form
// that runs entirely on interned IDs. Variables become dense slots in a
// per-rule environment array and constants are interned once. Bodies
// compile to slot-form plan.Atoms — pure structure, with no join order
// baked in — and the planner (internal/plan) decides per task how a
// body is ordered, probed, and filtered. Heads keep their own compiled
// form here, since head instantiation (including active-domain
// enumeration for unbound head variables) is eval's business, not the
// planner's.

// argOp classifies a compiled head argument position.
type argOp uint8

const (
	// opConst: the position is an interned constant.
	opConst argOp = iota
	// opBound: the position is a variable bound by the body; slot is its
	// env slot.
	opBound
	// opBind: a head variable not bound by the body; slot is the index
	// of the unbound-variable group the position belongs to.
	opBind
)

// carg is one compiled head argument position.
type carg struct {
	op   argOp
	id   uint32 // opConst: interned constant
	slot int    // opBound: env slot; opBind: group index
}

// chead is a compiled rule head.
type chead struct {
	pred string
	args []carg
	// unboundGroups lists, per distinct head variable not bound by the
	// body, the head positions it occupies. Such variables range over
	// the active domain (Example 6.2 semantics).
	unboundGroups [][]int
}

// crule is a compiled rule.
type crule struct {
	src   ast.Rule
	nvars int
	// body is the slot-form conjunction handed to the planner.
	body []plan.Atom
	// fp is the plan-cache fingerprint of (body, headSlots).
	fp string
	// headSlots lists the env slots the head reads (with duplicates for
	// repeated head variables); the planner keeps them live end-to-end.
	headSlots []int
	// names maps env slots back to source variable names, for explain
	// output.
	names []string
	head  chead
	// idbBody lists body positions with intensional predicates — the
	// delta positions of semi-naive evaluation.
	idbBody []int
}

// compileRules lowers every rule of prog and returns the compiled rules
// plus the largest environment size needed.
func compileRules(prog *ast.Program) ([]crule, int) {
	idb := prog.IDBPreds()
	rules := make([]crule, len(prog.Rules))
	maxVars := 0
	for i, r := range prog.Rules {
		rules[i] = compileRule(r, idb)
		if rules[i].nvars > maxVars {
			maxVars = rules[i].nvars
		}
	}
	return rules, maxVars
}

func compileRule(r ast.Rule, idb map[ast.PredSym]bool) crule {
	cr := crule{src: r}
	slots := make(map[string]int)
	slotOf := func(name string) int {
		s, ok := slots[name]
		if !ok {
			s = len(slots)
			slots[name] = s
			cr.names = append(cr.names, name)
		}
		return s
	}
	for bi, a := range r.Body {
		pa := plan.Atom{Pred: a.Pred, Args: make([]plan.Arg, 0, len(a.Args))}
		for _, t := range a.Args {
			if t.Kind == ast.Const {
				pa.Args = append(pa.Args, plan.Arg{Const: true, ID: database.Intern(t.Name)})
			} else {
				pa.Args = append(pa.Args, plan.Arg{Slot: slotOf(t.Name)})
			}
		}
		if idb[a.Sym()] {
			cr.idbBody = append(cr.idbBody, bi)
		}
		cr.body = append(cr.body, pa)
	}

	ch := chead{pred: r.Head.Pred}
	groups := make(map[string]int)
	for i, t := range r.Head.Args {
		switch t.Kind {
		case ast.Const:
			ch.args = append(ch.args, carg{op: opConst, id: database.Intern(t.Name)})
		case ast.Var:
			if s, ok := slots[t.Name]; ok {
				ch.args = append(ch.args, carg{op: opBound, slot: s})
				cr.headSlots = append(cr.headSlots, s)
				continue
			}
			g, ok := groups[t.Name]
			if !ok {
				g = len(ch.unboundGroups)
				groups[t.Name] = g
				ch.unboundGroups = append(ch.unboundGroups, nil)
			}
			ch.unboundGroups[g] = append(ch.unboundGroups[g], i)
			ch.args = append(ch.args, carg{op: opBind, slot: g})
		}
	}
	cr.head = ch
	cr.nvars = len(slots)
	cr.fp = plan.Fingerprint(cr.body, cr.headSlots)
	return cr
}
