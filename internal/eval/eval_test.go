package eval

import (
	"fmt"
	"testing"

	"datalogeq/internal/database"
	"datalogeq/internal/parser"
)

func TestTransitiveClosure(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := database.MustParse("e(a, b). e(b, c). e(c, d).")
	for _, naive := range []bool{false, true} {
		rel, stats, err := Goal(prog, db, "p", Options{Naive: naive})
		if err != nil {
			t.Fatalf("naive=%v: %v", naive, err)
		}
		want := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}
		if rel.Len() != len(want) {
			t.Fatalf("naive=%v: got %d tuples, want %d", naive, rel.Len(), len(want))
		}
		for _, w := range want {
			if !rel.Contains(database.Tuple{w[0], w[1]}) {
				t.Errorf("naive=%v: missing %v", naive, w)
			}
		}
		if stats.Iterations < 2 {
			t.Errorf("naive=%v: iterations = %d", naive, stats.Iterations)
		}
	}
}

func TestNaiveSemiNaiveAgreeOnCycle(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := database.MustParse("e(a, b). e(b, a). e(b, c).")
	a, _, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Eval(prog, db, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("semi-naive and naive disagree:\n%s\nvs\n%s", a, b)
	}
	// On a cycle {a,b} everything reaches everything in that component.
	for _, pair := range [][2]string{{"a", "a"}, {"b", "b"}, {"a", "c"}} {
		if !a.Contains("p", database.Tuple{pair[0], pair[1]}) {
			t.Errorf("missing p%v", pair)
		}
	}
}

func TestMutualRecursion(t *testing.T) {
	prog := parser.MustProgram(`
		even(X) :- zero(X).
		even(X) :- succ(Y, X), odd(Y).
		odd(X) :- succ(Y, X), even(Y).
	`)
	db := database.MustParse("zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3).")
	out, _, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		pred, n string
		want    bool
	}{
		{"even", "n0", true}, {"odd", "n1", true}, {"even", "n2", true},
		{"odd", "n3", true}, {"odd", "n0", false}, {"even", "n1", false},
	} {
		got := out.Contains(c.pred, database.Tuple{c.n})
		if got != c.want {
			t.Errorf("%s(%s) = %v, want %v", c.pred, c.n, got, c.want)
		}
	}
}

func TestEmptyBodyActiveDomain(t *testing.T) {
	// Example 6.2 convention: dist0(x, x) with an empty body holds for
	// every x in the active domain.
	prog := parser.MustProgram(`
		d(X, X).
		d(X, Y) :- e(X, Y).
	`)
	db := database.MustParse("e(a, b).")
	rel, _, err := Goal(prog, db, "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][2]string{{"a", "a"}, {"b", "b"}, {"a", "b"}} {
		if !rel.Contains(database.Tuple{w[0], w[1]}) {
			t.Errorf("missing d%v", w)
		}
	}
	if rel.Len() != 3 {
		t.Errorf("Len = %d, want 3", rel.Len())
	}
}

func TestConstantsInRules(t *testing.T) {
	prog := parser.MustProgram(`
		special(X) :- e(a, X).
		hasconst(b).
	`)
	db := database.MustParse("e(a, b). e(c, d).")
	out, _, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Contains("special", database.Tuple{"b"}) {
		t.Error("missing special(b)")
	}
	if out.Contains("special", database.Tuple{"d"}) {
		t.Error("spurious special(d)")
	}
	if !out.Contains("hasconst", database.Tuple{"b"}) {
		t.Error("missing fact rule output")
	}
}

func TestRepeatedVariableInBodyAtom(t *testing.T) {
	prog := parser.MustProgram("loop(X) :- e(X, X).")
	db := database.MustParse("e(a, a). e(a, b).")
	rel, _, err := Goal(prog, db, "loop", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(database.Tuple{"a"}) || rel.Len() != 1 {
		t.Errorf("loop = %v", rel.Tuples())
	}
}

func TestGoalMissingPredicate(t *testing.T) {
	prog := parser.MustProgram("p(X) :- e(X).")
	db := database.New()
	if _, _, err := Goal(prog, db, "zzz", Options{}); err == nil {
		t.Error("missing goal predicate should error")
	}
	rel, _, err := Goal(prog, db, "p", Options{})
	if err != nil || rel.Len() != 0 {
		t.Errorf("empty result expected, got %v, %v", rel, err)
	}
}

func TestMaxFacts(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := database.New()
	for i := 0; i < 30; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)})
	}
	_, _, err := Eval(prog, db, Options{MaxFacts: 10})
	if err == nil {
		t.Error("MaxFacts should abort")
	}
}

func TestSemiNaiveDoesLessWork(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	db := database.New()
	for i := 0; i < 40; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)})
	}
	_, sn, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, nv, err := Eval(prog, db, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Derived != nv.Derived {
		t.Errorf("derived mismatch: %d vs %d", sn.Derived, nv.Derived)
	}
	if sn.Firings >= nv.Firings {
		t.Errorf("semi-naive firings (%d) should be < naive (%d)", sn.Firings, nv.Firings)
	}
}

func TestEDBPreservedInOutput(t *testing.T) {
	prog := parser.MustProgram("p(X) :- e(X).")
	db := database.MustParse("e(a).")
	out, _, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Contains("e", database.Tuple{"a"}) {
		t.Error("EDB fact lost")
	}
	// Input DB untouched.
	if db.Contains("p", database.Tuple{"a"}) {
		t.Error("input database was mutated")
	}
}

func TestUnsafeHeadVariableOverDomain(t *testing.T) {
	// Head variable W not bound by the body ranges over the active
	// domain.
	prog := parser.MustProgram("pair(X, W) :- e(X).")
	db := database.MustParse("e(a). f(b).")
	rel, _, err := Goal(prog, db, "pair", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("Len = %d, want 2 (a×{a,b})", rel.Len())
	}
	if !rel.Contains(database.Tuple{"a", "b"}) {
		t.Error("missing pair(a, b)")
	}
}

func TestSameGeneration(t *testing.T) {
	prog := parser.MustProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	db := database.MustParse(`
		up(a, e). up(b, f).
		flat(e, f).
		down(f, b). down(e, a).
	`)
	rel, _, err := Goal(prog, db, "sg", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(database.Tuple{"e", "f"}) {
		t.Error("missing sg(e, f)")
	}
	if !rel.Contains(database.Tuple{"a", "b"}) {
		t.Error("missing sg(a, b) via up/sg/down")
	}
}
