package eval

import (
	"sync/atomic"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/guard"
	"datalogeq/internal/par"
	"datalogeq/internal/plan"
)

// The round engine. Each fixpoint round runs in three strictly
// separated phases:
//
//  1. plan (single-threaded): every (rule × delta-position) task of the
//     round gets an operator-tree plan from the cost-based planner,
//     keyed by (rule fingerprint, delta position, stats epoch) — stable
//     rounds hit the plan cache and replan nothing. Planning ensures
//     the indexes the chosen plans probe, so this is also where lazy
//     index builds happen; workers never write.
//  2. fire (parallel): the round's task list — one task per rule in a
//     full round, one per (rule, delta position) in a semi-naive round —
//     fans out over the worker pool. Workers stream their plans against
//     the frozen store (database.Relation.Probe is a pure read) and
//     buffer every derived head row; the store and its indexes are
//     frozen for the whole phase and reads need no locks.
//  3. merge (single-threaded): apply the buffered rows in task order.
//
// Determinism: the task list is a pure function of the program and the
// previous round's windows; planning is single-threaded, in canonical
// task order, against a store state that is itself worker-count
// independent, so every worker count sees identical plans; each task's
// output rows depend only on its plan and the frozen store and are
// enumerated in ascending row-ID order at every step (index posting
// lists and linear scans are both oldest-first); the merge applies
// tasks in canonical task order. Insertion order into the store —
// hence row IDs, delta windows, duplicate suppression, Stats, and the
// budget trip points — is therefore bit-identical for every worker
// count, including 1.
//
// Join order does not leak into the contract either: the set of
// complete matches of a rule body under a delta restriction is
// independent of the order the atoms are joined in, so Firings, Derived
// facts, round counts, and budget trips are identical whether the
// cost-based planner or the fixed textual order (Options.NoPlanner)
// produced the plans. Only the index-usage counters and the plan-cache
// statistics differ between the two modes.
//
// This is Jacobi-style iteration: facts derived in round i are visible
// to joins from round i+1 on, never mid-round. The fixpoint is the same
// (every round is monotone and bounded by the naive fixpoint), though
// round counts can differ from an engine with mid-round visibility.

// task is one unit of parallel work: fire rule against the frozen
// store, with body position deltaPos (if >= 0) restricted to window w,
// executing plan p.
type task struct {
	rule     int
	deltaPos int
	w        window
	p        *plan.Plan
}

// taskResult is a task's buffered output: head rows, flattened at the
// head's arity. count is the number of firings (== rows/arity except
// for zero-arity heads, which buffer no cells). trace carries the
// per-step actual row counts when explain instrumentation is on.
type taskResult struct {
	rows  []uint32
	count int
	trace []uint64
}

// planTrace accumulates explain instrumentation for one plan: how many
// tasks executed it and the cumulative actual rows per step, aggregated
// single-threaded at merge time in canonical task order.
type planTrace struct {
	rule     int
	deltaPos int
	p        *plan.Plan
	tasks    int
	rows     []uint64
}

type evaluator struct {
	prog    *ast.Program
	rules   []crule
	maxVars int
	total   *database.DB
	domain  []uint32
	opts    Options
	meter   *guard.Meter
	planner *plan.Planner

	workers  int
	stop     *atomic.Bool
	matchers []*matcher

	// strata, when non-nil, is the SCC-stratified evaluation schedule
	// (Options.Optimize): each stratum's rules are fixpointed to
	// completion before the next stratum starts. nil runs the single
	// global round loop.
	strata []ast.Stratum

	// frozen records each relation's length at the current round
	// boundary; advance turns growth beyond it into delta windows.
	frozen map[string]int

	// planMemo short-circuits the plan-cache probe per (rule, deltaPos):
	// while the stats epoch is unchanged the planner would return the
	// same plan anyway, so the memo skips hashing the (long) fingerprint
	// string every round. Indexed [rule][deltaPos+1]; memo hits still
	// count as planner cache hits so Stats are unchanged.
	planMemo [][]planMemoEntry

	// probeHits accumulates the workers' index-probe counts; folded into
	// Stats.IndexHits by Eval.
	probeHits uint64

	// explain turns on per-step row instrumentation; traces aggregates
	// it per plan, in first-use order (canonical, since the merge walks
	// tasks in canonical order).
	explain    bool
	traces     map[*plan.Plan]*planTrace
	traceOrder []*planTrace

	// limitErr is the budget trip observed by the merge; later buffered
	// rows are discarded (their firings still count). The merge is
	// single-threaded and replays tasks in canonical order, so the trip
	// point is bit-identical for every worker count.
	limitErr error

	stats Stats
}

func (e *evaluator) run() (Stats, error) {
	e.workers = par.Workers(e.opts.Workers)
	stop, release := par.StopFlag(e.opts.Ctx)
	e.stop = stop
	defer release()

	if e.strata == nil {
		e.snapshot()
		return e.stats, e.fixpoint(nil)
	}
	// Stratified driver: fixpoint each dependence-graph component to
	// completion in topological (callees-first) order. Every body
	// predicate of a stratum's rules is extensional or defined in the
	// same or an earlier — already completed — stratum, so the union of
	// the per-stratum fixpoints is the program's least fixpoint. The
	// schedule is a pure function of the program and each stratum runs
	// the same plan/fire/merge phases as the global loop, so the
	// worker-count determinism contract is unchanged; only the round
	// structure (and hence Stats.Iterations) differs.
	for _, s := range e.strata {
		e.snapshot()
		if err := e.fixpoint(s.Rules); err != nil {
			return e.stats, err
		}
	}
	return e.stats, nil
}

// fixpoint runs the round loop restricted to ruleSet (nil = every rule)
// until the restricted rules derive nothing new.
func (e *evaluator) fixpoint(ruleSet []int) error {
	var delta map[string]window // nil: fire every rule against the full store
	for {
		if err := e.ctxErr(); err != nil {
			return err
		}
		if err := e.meter.CheckWall("eval/round"); err != nil {
			return err
		}
		tasks := e.buildTasks(ruleSet, delta)
		if ruleSet != nil && delta != nil && len(tasks) == 0 {
			// Stratified semi-naive: the last growth feeds no rule of this
			// stratum (typical for a nonrecursive stratum), so the stratum
			// is complete without an empty round.
			return nil
		}
		if err := e.planTasks(tasks); err != nil {
			return err
		}
		results, err := e.runTasks(tasks)
		if err != nil {
			return err
		}
		mergeErr := e.merge(tasks, results)
		e.recycle(results)
		e.stats.Iterations++
		if mergeErr != nil {
			return mergeErr
		}
		next := e.advance()
		if len(next) == 0 {
			return nil
		}
		if e.opts.Naive {
			delta = nil
		} else {
			delta = next
		}
	}
}

// ctxErr reports cancellation of the evaluation's context.
func (e *evaluator) ctxErr() error {
	if e.opts.Ctx == nil {
		return nil
	}
	return e.opts.Ctx.Err()
}

// snapshot records the current length of every relation.
func (e *evaluator) snapshot() {
	for _, p := range e.total.Preds() {
		e.frozen[p] = e.total.Lookup(p).Len()
	}
}

// advance returns the windows of rows appended by the last merge and
// moves the frozen marks to the current lengths. Relations created
// since the last round have an implicit mark of 0.
func (e *evaluator) advance() map[string]window {
	delta := make(map[string]window)
	for _, p := range e.total.Preds() {
		n := e.total.Lookup(p).Len()
		if m := e.frozen[p]; n > m {
			delta[p] = window{m, n}
		}
		e.frozen[p] = n
	}
	return delta
}

// buildTasks lists the round's work in canonical order: rules in
// program order (restricted to ruleSet when non-nil — the active
// stratum's ascending rule indexes); within a rule, delta positions in
// body order. The merge replays results in this same order.
func (e *evaluator) buildTasks(ruleSet []int, delta map[string]window) []task {
	var tasks []task
	add := func(ri int) {
		if delta == nil {
			tasks = append(tasks, task{rule: ri, deltaPos: -1})
			return
		}
		for _, bi := range e.rules[ri].idbBody {
			if w, ok := delta[e.rules[ri].body[bi].Pred]; ok {
				tasks = append(tasks, task{rule: ri, deltaPos: bi, w: w})
			}
		}
	}
	if ruleSet == nil {
		for ri := range e.rules {
			add(ri)
		}
	} else {
		for _, ri := range ruleSet {
			add(ri)
		}
	}
	return tasks
}

// planMemoEntry is one memoized (rule, deltaPos) plan and the epoch it
// was cached under.
type planMemoEntry struct {
	p     *plan.Plan
	epoch uint64
}

// planTasks attaches a plan to every task, single-threaded between
// rounds. The stats epoch is read once at the round boundary, so every
// task of the round keys the plan cache against the same epoch; cache
// misses construct a plan (ensuring the indexes it probes — the round's
// only index builds) and charge the budget's Plans dimension, in
// canonical task order so trips are worker-count independent.
func (e *evaluator) planTasks(tasks []task) error {
	epoch := e.total.StatsEpoch()
	if e.planMemo == nil {
		e.planMemo = make([][]planMemoEntry, len(e.rules))
	}
	for ti := range tasks {
		t := &tasks[ti]
		r := &e.rules[t.rule]
		mrow := e.planMemo[t.rule]
		if mrow == nil {
			mrow = make([]planMemoEntry, len(r.body)+1)
			e.planMemo[t.rule] = mrow
		}
		me := &mrow[t.deltaPos+1]
		if me.p != nil && me.epoch == epoch {
			// The planner's cache would return the same plan; count the
			// hit without re-hashing the fingerprint.
			t.p = me.p
			e.planner.Hits++
			continue
		}
		p, cached := e.planner.Plan(plan.Request{
			Atoms:       r.body,
			Fingerprint: r.fp,
			NumSlots:    r.nvars,
			HeadSlots:   r.headSlots,
			DeltaPos:    t.deltaPos,
			DB:          e.total,
			Epoch:       epoch,
		})
		t.p = p
		me.p, me.epoch = p, epoch
		if !cached {
			if err := e.meter.Charge("eval/plan", guard.Plans, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTasks fires the round's tasks across the worker pool and collects
// the buffered results, indexed by task. Each dense worker ID owns one
// matcher, so scratch buffers are reused without locking.
func (e *evaluator) runTasks(tasks []task) ([]taskResult, error) {
	results := make([]taskResult, len(tasks))
	nw := e.workers
	if nw > len(tasks) {
		nw = len(tasks)
	}
	for len(e.matchers) < nw {
		e.matchers = append(e.matchers, e.newMatcher())
	}
	par.Run(e.workers, len(tasks), func(w, ti int) {
		results[ti] = e.matchers[w].runTask(tasks[ti])
	})
	for _, m := range e.matchers {
		e.probeHits += m.x.Probes
		m.x.Probes = 0
	}
	if err := e.ctxErr(); err != nil {
		// Workers stop early once the cancellation flag trips, so the
		// buffers may be truncated; discard them.
		return nil, err
	}
	return results, nil
}

// merge applies the round's buffered rows to the store in task order.
// Firings are counted for the whole round — the barrier means every
// task completed — while rows past a budget trip are discarded. All
// budget charges happen here, single-threaded and in canonical task
// order, which is what makes trip points worker-count-independent.
func (e *evaluator) merge(tasks []task, results []taskResult) error {
	for ti := range results {
		res := &results[ti]
		if e.explain && res.trace != nil {
			e.recordTrace(&tasks[ti], res.trace)
		}
		e.stats.Firings += res.count
		if res.count > 0 {
			if err := e.meter.Charge("eval/merge", guard.Steps, int64(res.count)); err != nil && e.limitErr == nil {
				e.limitErr = err
			}
		}
		if e.limitErr != nil {
			continue
		}
		h := &e.rules[tasks[ti].rule].head
		arity := len(h.args)
		if arity == 0 {
			for k := 0; k < res.count && e.limitErr == nil; k++ {
				e.addFact(h.pred, database.Row{})
			}
			continue
		}
		rows := res.rows
		for off := 0; off+arity <= len(rows) && e.limitErr == nil; off += arity {
			e.addFact(h.pred, database.Row(rows[off:off+arity]))
		}
	}
	return e.limitErr
}

// recycle hands the round's result buffers back to the workers' free
// lists, round-robin, so the next round's tasks write into them instead
// of allocating. Runs single-threaded between rounds; the merge has
// already copied every row it kept into the store.
func (e *evaluator) recycle(results []taskResult) {
	if len(e.matchers) == 0 {
		return
	}
	for i := range results {
		if b := results[i].rows; cap(b) > 0 {
			m := e.matchers[i%len(e.matchers)]
			m.free = append(m.free, b)
		}
	}
}

// recordTrace folds one task's per-step row counts into its plan's
// cumulative trace. Runs inside the single-threaded merge, in canonical
// task order, so trace aggregation is deterministic.
func (e *evaluator) recordTrace(t *task, rows []uint64) {
	tr := e.traces[t.p]
	if tr == nil {
		tr = &planTrace{
			rule:     t.rule,
			deltaPos: t.deltaPos,
			p:        t.p,
			rows:     make([]uint64, len(t.p.Steps)),
		}
		if e.traces == nil {
			e.traces = make(map[*plan.Plan]*planTrace)
		}
		e.traces[t.p] = tr
		e.traceOrder = append(e.traceOrder, tr)
	}
	tr.tasks++
	for i, v := range rows {
		tr.rows[i] += v
	}
}

func (e *evaluator) addFact(pred string, row database.Row) {
	if e.total.AddRow(pred, row) {
		e.stats.Derived++
		if err := e.meter.Charge("eval/merge", guard.Facts, 1); err != nil && e.limitErr == nil {
			e.limitErr = err
		}
	}
}
