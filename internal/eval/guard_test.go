package eval_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/guard"
	"datalogeq/internal/parser"
)

// transitive is a small recursive program whose fixpoint derives a few
// hundred facts over a chain graph — enough rounds for mid-run faults.
const transitive = `
	p(X, Y) :- e(X, Z), p(Z, Y).
	p(X, Y) :- e(X, Y).
`

// TestEvalBudgetTripDifferential pins the determinism contract of the
// guard layer: a budget trip (real or injected) aborts at the same
// fact, with the same error string, stats, and partial database, for
// every worker count.
func TestEvalBudgetTripDifferential(t *testing.T) {
	prog := parser.MustProgram(transitive)
	db := gen.ChainGraph(25)
	budgets := []guard.Budget{
		{MaxFacts: 17},
		{MaxSteps: 40},
		guard.InjectFault(guard.Budget{}, guard.Facts, 23),
		guard.InjectFault(guard.Budget{}, guard.Steps, 31),
	}
	for _, b := range budgets {
		base, baseStats, baseErr := eval.Eval(prog, db, eval.Options{Budget: b, Workers: 1})
		var le *guard.LimitError
		if !errors.As(baseErr, &le) {
			t.Fatalf("budget %+v: err = %v, want *guard.LimitError", b, baseErr)
		}
		if base == nil {
			t.Fatal("tripped eval must return the partial database")
		}
		for _, w := range []int{2, 8} {
			out, stats, err := eval.Eval(prog, db, eval.Options{Budget: b, Workers: w})
			if err == nil || err.Error() != baseErr.Error() {
				t.Errorf("workers=%d: err = %v, want %v", w, err, baseErr)
			}
			if statsComparable(stats) != statsComparable(baseStats) {
				t.Errorf("workers=%d: stats = %+v, want %+v", w, statsComparable(stats), statsComparable(baseStats))
			}
			if out.String() != base.String() {
				t.Errorf("workers=%d: partial database differs from sequential", w)
			}
		}
	}
}

// TestEvalStatsReportBudgetUsage checks Stats.Budget mirrors the
// evaluation's own counters through the shared accounting path.
func TestEvalStatsReportBudgetUsage(t *testing.T) {
	prog := parser.MustProgram(transitive)
	_, stats, err := eval.Eval(prog, gen.ChainGraph(10), eval.Options{Budget: guard.Budget{MaxFacts: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Budget.Facts != int64(stats.Derived) {
		t.Errorf("Budget.Facts = %d, Derived = %d", stats.Budget.Facts, stats.Derived)
	}
	if stats.Budget.Steps != int64(stats.Firings) {
		t.Errorf("Budget.Steps = %d, Firings = %d", stats.Budget.Steps, stats.Firings)
	}
}

// TestEvalMaxFactsShimEquivalence: the deprecated Options.MaxFacts and
// Budget.MaxFacts abort at the same point with the same partial result.
func TestEvalMaxFactsShimEquivalence(t *testing.T) {
	prog := parser.MustProgram(transitive)
	db := gen.ChainGraph(20)
	shimOut, shimStats, shimErr := eval.Eval(prog, db, eval.Options{MaxFacts: 13})
	budOut, budStats, budErr := eval.Eval(prog, db, eval.Options{Budget: guard.Budget{MaxFacts: 13}})
	if shimErr == nil || budErr == nil || shimErr.Error() != budErr.Error() {
		t.Fatalf("shim err %v vs budget err %v", shimErr, budErr)
	}
	if statsComparable(shimStats) != statsComparable(budStats) {
		t.Errorf("shim stats %+v vs budget stats %+v", shimStats, budStats)
	}
	if shimOut.String() != budOut.String() {
		t.Error("shim and budget partial databases differ")
	}
}

// TestEvalWallBudget: an already-expired wall budget aborts the run at
// the first round boundary with a wall LimitError.
func TestEvalWallBudget(t *testing.T) {
	prog := parser.MustProgram(transitive)
	b := guard.Budget{MaxWall: time.Nanosecond}.Started()
	time.Sleep(time.Millisecond)
	_, _, err := eval.Eval(prog, gen.ChainGraph(10), eval.Options{Budget: b})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != guard.Wall {
		t.Fatalf("err = %v, want wall LimitError", err)
	}
}

// TestEvalInjectedPanicRecovered: a panic fired deep in the merge path
// surfaces as a *guard.PanicError from Eval — never a crash — for every
// worker count.
func TestEvalInjectedPanicRecovered(t *testing.T) {
	prog := parser.MustProgram(transitive)
	db := gen.ChainGraph(15)
	for _, w := range []int{1, 2, 8} {
		b := guard.InjectPanic(guard.Budget{}, guard.Facts, 9)
		_, _, err := eval.Eval(prog, db, eval.Options{Budget: b, Workers: w})
		var pe *guard.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *guard.PanicError", w, err)
		}
		if _, ok := pe.Value.(*guard.InjectedPanic); !ok {
			t.Errorf("workers=%d: panic value = %v", w, pe.Value)
		}
	}
}

// settleGoroutines polls until the goroutine count returns to at most
// the baseline (plus slack for runtime helpers), failing the test if it
// never settles: a worker leak.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before", runtime.NumGoroutine(), baseline)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEvalInjectCancelMidRound exercises cancellation hygiene at an
// exact mid-evaluation point: the run returns ctx.Err() promptly, the
// partial database is still usable, and no goroutines leak.
func TestEvalInjectCancelMidRound(t *testing.T) {
	prog := parser.MustProgram(transitive)
	db := gen.ChainGraph(40)
	for _, w := range []int{1, 2, 8} {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		b := guard.InjectCancel(guard.Budget{}, guard.Facts, 50, cancel)
		out, _, err := eval.Eval(prog, db, eval.Options{Budget: b, Workers: w, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if out == nil {
			t.Errorf("workers=%d: cancelled eval must return the partial database", w)
		}
		cancel()
		settleGoroutines(t, baseline)
	}
}
