package eval

import (
	"datalogeq/internal/database"
)

// The matcher walks a compiled rule's body left to right, extending the
// slot environment with one candidate row at a time. Candidate rows for
// an atom come from the relation's persistent index on the atom's
// static column mask, restricted to the atom's window — the full slab
// for ordinary positions, the previous round's delta window for the
// semi-naive delta position. Atoms with no constrained positions, and
// atoms too wide for a 64-bit mask, fall back to scanLinear.

// joinFrom matches rule.body[pos:] under the current environment and
// emits head facts for every complete match. If deltaPos >= 0, the body
// atom at that position is restricted to the rows of window dw.
func (e *evaluator) joinFrom(rule *crule, pos, deltaPos int, dw window) {
	if e.limitErr != nil {
		return
	}
	if pos == len(rule.body) {
		e.emitHead(rule)
		return
	}
	ca := &rule.body[pos]
	rel := e.total.Lookup(ca.pred)
	if rel == nil {
		return
	}
	lo, hi := 0, rel.Len()
	if pos == deltaPos {
		lo, hi = dw.lo, dw.hi
	}
	if ca.wide || ca.mask == 0 {
		e.scanLinear(rule, ca, rel, lo, hi, pos, deltaPos, dw)
		return
	}
	// Indexed path: constants and pre-bound slots form the lookup key;
	// the persistent index returns the matching row IDs in [lo, hi).
	key := e.key[:0]
	for _, a := range ca.args {
		switch a.op {
		case opConst:
			key = append(key, a.id)
		case opBound:
			key = append(key, e.env[a.slot])
		}
	}
	e.key = key
	for _, rid := range rel.Match(ca.mask, key, lo, hi) {
		i := int(rid)
		if !checksPass(ca, rel, i) {
			continue
		}
		for _, b := range ca.binds {
			e.env[b.slot] = rel.At(i, b.pos)
		}
		e.joinFrom(rule, pos+1, deltaPos, dw)
		if e.limitErr != nil {
			return
		}
	}
}

// checksPass verifies the repeated-fresh-variable constraints of an
// atom against slab row i.
func checksPass(ca *catom, rel *database.Relation, i int) bool {
	for _, c := range ca.checks {
		if rel.At(i, c.pos) != rel.At(i, c.firstPos) {
			return false
		}
	}
	return true
}

// scanLinear is the fallback matcher: a straight scan of rows [lo, hi)
// verifying every compiled argument. It serves atoms with no
// constrained positions (where an index would be pointless) and atoms
// wider than 64 columns (which the bitmask cannot describe).
func (e *evaluator) scanLinear(rule *crule, ca *catom, rel *database.Relation, lo, hi, pos, deltaPos int, dw window) {
rows:
	for i := lo; i < hi; i++ {
		for j, a := range ca.args {
			switch a.op {
			case opConst:
				if rel.At(i, j) != a.id {
					continue rows
				}
			case opBound:
				if rel.At(i, j) != e.env[a.slot] {
					continue rows
				}
			case opCheck:
				if rel.At(i, j) != rel.At(i, a.pos) {
					continue rows
				}
			}
		}
		for _, b := range ca.binds {
			e.env[b.slot] = rel.At(i, b.pos)
		}
		e.joinFrom(rule, pos+1, deltaPos, dw)
		if e.limitErr != nil {
			return
		}
	}
}
