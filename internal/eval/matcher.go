package eval

import (
	"datalogeq/internal/database"
)

// A matcher is one worker's private rule-firing state. It walks a
// compiled rule's body left to right, extending the slot environment
// with one candidate row at a time. Candidate rows for an atom come
// from the relation's persistent index on the atom's static column
// mask, restricted to the atom's window — the full (frozen) slab for
// ordinary positions, the previous round's delta window for the
// semi-naive delta position. Atoms with no constrained positions, atoms
// too wide for a 64-bit mask, and atoms whose index has not been built
// fall back to scanLinear.
//
// During a round the matcher only reads the store (Relation.Probe, At)
// and appends derived head rows to its private out buffer; the round
// engine merges buffers after the parallel phase.
type matcher struct {
	e *evaluator

	// env is the rule's slot environment, sized for the widest rule.
	env []uint32
	// key and headRow are reusable scratch rows.
	key     database.Row
	headRow database.Row

	// out and count buffer the current task's emissions: head rows
	// flattened at the head arity, and the firing count.
	out   []uint32
	count int

	// probes counts index probes; folded into Stats.IndexHits by the
	// round engine after each barrier.
	probes uint64

	// steps and stopped implement cheap cancellation: every 1024 match
	// steps the worker polls the engine's stop flag.
	steps   uint32
	stopped bool
}

func (e *evaluator) newMatcher() *matcher {
	return &matcher{e: e, env: make([]uint32, e.maxVars)}
}

// runTask fires one task and returns its buffered output. The scratch
// buffer is reused across tasks; the result gets a right-sized copy.
func (m *matcher) runTask(t task) taskResult {
	rule := &m.e.rules[t.rule]
	m.out = m.out[:0]
	m.count = 0
	m.joinFrom(rule, 0, t.deltaPos, t.w)
	return taskResult{rows: append([]uint32(nil), m.out...), count: m.count}
}

// poll returns true once the evaluation has been cancelled. The flag
// load is amortized over 1024 steps so the hot loops stay cheap.
func (m *matcher) poll() bool {
	if m.stopped {
		return true
	}
	m.steps++
	if m.steps&1023 == 0 && m.e.stop.Load() {
		m.stopped = true
	}
	return m.stopped
}

// joinFrom matches rule.body[pos:] under the current environment and
// buffers head facts for every complete match. If deltaPos >= 0, the
// body atom at that position is restricted to the rows of window dw.
func (m *matcher) joinFrom(rule *crule, pos, deltaPos int, dw window) {
	if m.stopped {
		return
	}
	if pos == len(rule.body) {
		m.emitHead(rule)
		return
	}
	ca := &rule.body[pos]
	rel := m.e.total.Lookup(ca.pred)
	if rel == nil {
		return
	}
	// The store is frozen during the fire phase, so Len() is the
	// round-start snapshot length.
	lo, hi := 0, rel.Len()
	if pos == deltaPos {
		lo, hi = dw.lo, dw.hi
	}
	if ca.wide || ca.mask == 0 {
		m.scanLinear(rule, ca, rel, lo, hi, pos, deltaPos, dw)
		return
	}
	// Indexed path: constants and pre-bound slots form the lookup key;
	// the persistent index returns the matching row IDs in [lo, hi),
	// oldest first.
	key := m.key[:0]
	for _, a := range ca.args {
		switch a.op {
		case opConst:
			key = append(key, a.id)
		case opBound:
			key = append(key, m.env[a.slot])
		}
	}
	m.key = key
	rows, ok := rel.Probe(ca.mask, key, lo, hi)
	if !ok {
		// Index not built (relation appeared after the last prepare);
		// fall back to scanning.
		m.scanLinear(rule, ca, rel, lo, hi, pos, deltaPos, dw)
		return
	}
	m.probes++
	for _, rid := range rows {
		if m.poll() {
			return
		}
		i := int(rid)
		if !checksPass(ca, rel, i) {
			continue
		}
		for _, b := range ca.binds {
			m.env[b.slot] = rel.At(i, b.pos)
		}
		m.joinFrom(rule, pos+1, deltaPos, dw)
	}
}

// checksPass verifies the repeated-fresh-variable constraints of an
// atom against slab row i.
func checksPass(ca *catom, rel *database.Relation, i int) bool {
	for _, c := range ca.checks {
		if rel.At(i, c.pos) != rel.At(i, c.firstPos) {
			return false
		}
	}
	return true
}

// scanLinear is the fallback matcher: a straight scan of rows [lo, hi)
// verifying every compiled argument. It serves atoms with no
// constrained positions (where an index would be pointless) and atoms
// wider than 64 columns (which the bitmask cannot describe).
func (m *matcher) scanLinear(rule *crule, ca *catom, rel *database.Relation, lo, hi, pos, deltaPos int, dw window) {
rows:
	for i := lo; i < hi; i++ {
		if m.poll() {
			return
		}
		for j, a := range ca.args {
			switch a.op {
			case opConst:
				if rel.At(i, j) != a.id {
					continue rows
				}
			case opBound:
				if rel.At(i, j) != m.env[a.slot] {
					continue rows
				}
			case opCheck:
				if rel.At(i, j) != rel.At(i, a.pos) {
					continue rows
				}
			}
		}
		for _, b := range ca.binds {
			m.env[b.slot] = rel.At(i, b.pos)
		}
		m.joinFrom(rule, pos+1, deltaPos, dw)
	}
}

// emitHead instantiates the head under the rule's environment and
// buffers the resulting rows; unbound head variables range over the
// active domain. Rows are copied into the out buffer, so the scratch
// row is reused across emissions.
func (m *matcher) emitHead(rule *crule) {
	h := &rule.head
	row := m.headRow[:0]
	for _, a := range h.args {
		switch a.op {
		case opConst:
			row = append(row, a.id)
		case opBound:
			row = append(row, m.env[a.slot])
		default: // opBind: unbound, filled by domain enumeration below
			row = append(row, 0)
		}
	}
	m.headRow = row
	if len(h.unboundGroups) == 0 {
		m.emit(row)
		return
	}
	var assign func(g int)
	assign = func(g int) {
		if m.stopped {
			return
		}
		if g == len(h.unboundGroups) {
			m.emit(row)
			return
		}
		for _, id := range m.e.domain {
			for _, p := range h.unboundGroups[g] {
				row[p] = id
			}
			assign(g + 1)
		}
	}
	assign(0)
}

// emit buffers one head row (a firing).
func (m *matcher) emit(row database.Row) {
	if m.poll() {
		return
	}
	m.out = append(m.out, row...)
	m.count++
}
