package eval

import (
	"datalogeq/internal/database"
	"datalogeq/internal/plan"
)

// A matcher is one worker's private rule-firing state: a streaming plan
// executor (internal/plan.Exec) plus the head-instantiation logic that
// turns each complete body match into buffered head rows. The executor
// pipelines candidate rows through the task's operator tree — index
// probes and filtered scans in the planner's join order — and fires
// OnMatch per complete match; emitHead then instantiates the head under
// the slot environment, enumerating the active domain for head
// variables the body leaves unbound.
//
// During a round the matcher only reads the store (Relation.Probe, At)
// and appends derived head rows to its private out buffer; the round
// engine merges buffers after the parallel phase.
type matcher struct {
	e *evaluator
	x plan.Exec

	// rule is the task currently firing; set by runTask before the
	// executor runs, read by the OnMatch callback.
	rule *crule

	// headRow is a reusable scratch row.
	headRow database.Row

	// out and count buffer the current task's emissions: head rows
	// flattened at the head arity, and the firing count. out is taken
	// from free at task start and handed off in the taskResult; the
	// round engine returns buffers after its merge, so steady-state
	// rounds allocate no result buffers.
	out   []uint32
	count int

	// free holds result buffers returned by the round engine, reusable
	// by this worker's next tasks. Only the owning worker pops (during
	// the parallel phase) and only the single-threaded recycle step
	// pushes (between rounds), so no locking is needed.
	free [][]uint32
}

func (e *evaluator) newMatcher() *matcher {
	m := &matcher{e: e}
	m.x.Env = make([]uint32, e.maxVars)
	m.x.Stop = e.stop
	m.x.OnMatch = m.emitHead
	return m
}

// runTask fires one task and returns its buffered output. The output
// buffer comes from the worker's free list (the round engine recycles
// result buffers after each merge) and is handed off in the result, so
// stable rounds reuse the same few buffers instead of allocating.
func (m *matcher) runTask(t task) taskResult {
	m.rule = &m.e.rules[t.rule]
	if n := len(m.free); n > 0 {
		m.out = m.free[n-1][:0]
		m.free = m.free[:n-1]
	} else {
		m.out = nil
	}
	m.count = 0
	var trace []uint64
	if m.e.explain {
		trace = make([]uint64, len(t.p.Steps))
	}
	m.x.Rows = trace
	m.x.Run(t.p, plan.Window{Lo: t.w.lo, Hi: t.w.hi})
	rows := m.out
	m.out = nil
	return taskResult{rows: rows, count: m.count, trace: trace}
}

// emitHead instantiates the head under the rule's environment and
// buffers the resulting rows; unbound head variables range over the
// active domain. Rows are copied into the out buffer, so the scratch
// row is reused across emissions.
func (m *matcher) emitHead() {
	h := &m.rule.head
	row := m.headRow[:0]
	for _, a := range h.args {
		switch a.op {
		case opConst:
			row = append(row, a.id)
		case opBound:
			row = append(row, m.x.Env[a.slot])
		default: // opBind: unbound, filled by domain enumeration below
			row = append(row, 0)
		}
	}
	m.headRow = row
	if len(h.unboundGroups) == 0 {
		m.emit(row)
		return
	}
	var assign func(g int)
	assign = func(g int) {
		if m.x.Stopped() {
			return
		}
		if g == len(h.unboundGroups) {
			m.emit(row)
			return
		}
		for _, id := range m.e.domain {
			for _, p := range h.unboundGroups[g] {
				row[p] = id
			}
			assign(g + 1)
		}
	}
	assign(0)
}

// emit buffers one head row (a firing).
func (m *matcher) emit(row database.Row) {
	if m.x.Poll() {
		return
	}
	m.out = append(m.out, row...)
	m.count++
}
