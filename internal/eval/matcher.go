package eval

import (
	"strings"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
)

// indexKey identifies a cached join index: a predicate, the bitmask of
// columns the index is keyed on, and whether it indexes the delta store.
type indexKey struct {
	pred  string
	mask  uint64
	delta bool
}

// index maps a projection key (the bound column values, NUL-joined) to
// the matching tuples.
type index map[string][]database.Tuple

// matchTotal returns tuples of atom's relation in the full store that
// agree with env on bound positions and with constants in the atom.
func (e *evaluator) matchTotal(atom ast.Atom, env map[string]string) []database.Tuple {
	rel := e.total.Lookup(atom.Pred)
	if rel == nil {
		return nil
	}
	return e.match(atom, rel.Tuples(), env, false)
}

// matchDelta is matchTotal restricted to the given delta tuples.
func (e *evaluator) matchDelta(atom ast.Atom, deltaTuples []database.Tuple, env map[string]string) []database.Tuple {
	return e.match(atom, deltaTuples, env, true)
}

func (e *evaluator) match(atom ast.Atom, tuples []database.Tuple, env map[string]string, isDelta bool) []database.Tuple {
	// Determine which positions are constrained: constants in the atom,
	// variables already bound in env, and repeated variables within the
	// atom (the second and later occurrences must equal the first, which
	// we handle by treating only the first occurrence as binding and
	// checking the rest).
	var mask uint64
	key := make([]string, 0, len(atom.Args))
	seenVar := make(map[string]int)
	var repeats [][2]int // (pos, firstPos) pairs for repeated variables
	for i, arg := range atom.Args {
		switch arg.Kind {
		case ast.Const:
			mask |= 1 << uint(i)
			key = append(key, arg.Name)
		case ast.Var:
			if c, ok := env[arg.Name]; ok {
				mask |= 1 << uint(i)
				key = append(key, c)
				continue
			}
			if first, ok := seenVar[arg.Name]; ok {
				repeats = append(repeats, [2]int{i, first})
			} else {
				seenVar[arg.Name] = i
			}
		}
	}
	var candidates []database.Tuple
	if mask == 0 {
		candidates = tuples
	} else if len(atom.Args) <= 64 {
		idx := e.indexFor(atom.Pred, mask, isDelta, tuples, len(atom.Args))
		candidates = idx[strings.Join(key, "\x00")]
	} else {
		candidates = filterLinear(tuples, atom, env)
	}
	if len(repeats) == 0 {
		return candidates
	}
	out := candidates[:0:0]
	for _, t := range candidates {
		ok := true
		for _, r := range repeats {
			if t[r[0]] != t[r[1]] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// indexFor returns (building on first use this round) the hash index for
// the given predicate, column mask, and store.
func (e *evaluator) indexFor(pred string, mask uint64, isDelta bool, tuples []database.Tuple, arity int) index {
	k := indexKey{pred: pred, mask: mask, delta: isDelta}
	if idx, ok := e.indexes[k]; ok {
		return idx
	}
	idx := make(index)
	cols := make([]int, 0, arity)
	for i := 0; i < arity; i++ {
		if mask&(1<<uint(i)) != 0 {
			cols = append(cols, i)
		}
	}
	parts := make([]string, len(cols))
	for _, t := range tuples {
		for j, c := range cols {
			parts[j] = t[c]
		}
		key := strings.Join(parts, "\x00")
		idx[key] = append(idx[key], t)
	}
	e.indexes[k] = idx
	return idx
}

// filterLinear is the fallback matcher for atoms too wide to index.
func filterLinear(tuples []database.Tuple, atom ast.Atom, env map[string]string) []database.Tuple {
	var out []database.Tuple
	for _, t := range tuples {
		if matchesTuple(atom, t, env) {
			out = append(out, t)
		}
	}
	return out
}

func matchesTuple(atom ast.Atom, t database.Tuple, env map[string]string) bool {
	local := make(map[string]string)
	for i, arg := range atom.Args {
		switch arg.Kind {
		case ast.Const:
			if t[i] != arg.Name {
				return false
			}
		case ast.Var:
			if c, ok := env[arg.Name]; ok {
				if t[i] != c {
					return false
				}
				continue
			}
			if c, ok := local[arg.Name]; ok {
				if t[i] != c {
					return false
				}
				continue
			}
			local[arg.Name] = t[i]
		}
	}
	return true
}
