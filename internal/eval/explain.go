package eval

import (
	"fmt"
	"strings"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
)

// Explain is the plan report of an instrumented evaluation: per rule,
// every distinct plan the planner chose for it (one per delta position
// and stats epoch it was planned at), with the join order, access
// paths, estimated rows, and the actual rows each step produced summed
// over every task that ran the plan. It is a separate type rather than
// part of Stats so Stats stays a flat comparable struct for the
// differential tests.
type Explain struct {
	Rules []RuleExplain
	// Plan-cache totals, duplicated from Stats for self-contained
	// rendering.
	PlanCacheHits, PlanCacheMisses, PlanReplans uint64
	// Opt is the static optimizer's per-pass summary when
	// Options.Optimize ran; nil otherwise. The rule plans above describe
	// the optimized program.
	Opt *OptSummary
}

// RuleExplain groups the plans chosen for one source rule.
type RuleExplain struct {
	// Rule is the source text of the rule.
	Rule string
	// Plans lists the distinct plans executed for the rule, in first-use
	// order.
	Plans []PlanExplain
}

// PlanExplain is one rendered plan with its execution totals.
type PlanExplain struct {
	// DeltaPos is the body position the plan's delta window restricts,
	// or -1 for a full-store firing.
	DeltaPos int
	// Epoch is the stats epoch the plan was costed at.
	Epoch uint64
	// Fixed marks a textual-order plan (Options.NoPlanner).
	Fixed bool
	// Tasks counts how many tasks executed the plan.
	Tasks int
	// Est is the cost model's cumulative row estimate per step, in plan
	// order; Actual the rows each step actually produced, summed over
	// every task that ran the plan. Comparing the two is how plan
	// regressions are diagnosed.
	Est    []float64
	Actual []uint64
	// Text is the rendered join tree: one line per step with access
	// path, estimated and actual rows, and projection points.
	Text string
}

// String renders the whole report.
func (ex *Explain) String() string {
	var b strings.Builder
	if ex.Opt != nil {
		b.WriteString("optimizer:\n")
		b.WriteString(ex.Opt.String())
	}
	for _, re := range ex.Rules {
		fmt.Fprintf(&b, "%s\n", re.Rule)
		for _, pe := range re.Plans {
			mode := ""
			if pe.Fixed {
				mode = ", fixed order"
			}
			if pe.DeltaPos < 0 {
				fmt.Fprintf(&b, "  [full round, epoch %d, %d task(s)%s]\n", pe.Epoch, pe.Tasks, mode)
			} else {
				fmt.Fprintf(&b, "  [delta at body atom %d, epoch %d, %d task(s)%s]\n", pe.DeltaPos+1, pe.Epoch, pe.Tasks, mode)
			}
			b.WriteString(pe.Text)
		}
	}
	fmt.Fprintf(&b, "plan cache: %d hits, %d misses, %d replans\n",
		ex.PlanCacheHits, ex.PlanCacheMisses, ex.PlanReplans)
	return b.String()
}

// EvalExplain is Eval with plan instrumentation: it additionally
// returns the Explain report describing every plan the evaluation ran.
// The instrumentation only adds per-step counters inside the workers
// (aggregated at the single-threaded merge), so the returned database,
// Stats, and error are identical to Eval's for the same inputs.
func EvalExplain(prog *ast.Program, edb *database.DB, opts Options) (*database.DB, Stats, *Explain, error) {
	return evalWith(prog, edb, opts, true)
}

// buildExplain assembles the report from the merge-time traces, grouped
// by rule in program order.
func (e *evaluator) buildExplain(stats Stats) *Explain {
	ex := &Explain{
		PlanCacheHits:   stats.PlanCacheHits,
		PlanCacheMisses: stats.PlanCacheMisses,
		PlanReplans:     stats.PlanReplans,
	}
	byRule := make(map[int][]*planTrace)
	for _, tr := range e.traceOrder {
		byRule[tr.rule] = append(byRule[tr.rule], tr)
	}
	for ri := range e.rules {
		trs := byRule[ri]
		if len(trs) == 0 {
			continue
		}
		r := &e.rules[ri]
		name := func(slot int) string {
			if slot >= 0 && slot < len(r.names) {
				return r.names[slot]
			}
			return fmt.Sprintf("s%d", slot)
		}
		re := RuleExplain{Rule: r.src.String()}
		for _, tr := range trs {
			est := make([]float64, len(tr.p.Steps))
			for i := range tr.p.Steps {
				est[i] = tr.p.Steps[i].EstRows
			}
			re.Plans = append(re.Plans, PlanExplain{
				DeltaPos: tr.deltaPos,
				Epoch:    tr.p.Epoch,
				Fixed:    tr.p.Fixed,
				Tasks:    tr.tasks,
				Est:      est,
				Actual:   tr.rows,
				Text:     tr.p.Render(name, tr.rows),
			})
		}
		ex.Rules = append(ex.Rules, re)
	}
	return ex
}
