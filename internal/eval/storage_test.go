package eval

import (
	"fmt"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/parser"
)

// TestUnsafeHeadRepeatedVariables covers emitHead with a head variable
// repeated across several unbound positions: every assignment picks one
// domain constant per distinct variable, so the repeated positions must
// stay equal.
func TestUnsafeHeadRepeatedVariables(t *testing.T) {
	prog := parser.MustProgram("p(X, X, Y).")
	db := database.MustParse("e(a). e(b).")
	rel, _, err := Goal(prog, db, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// X and Y range over {a, b} independently; X's two positions agree.
	want := [][3]string{
		{"a", "a", "a"}, {"a", "a", "b"}, {"b", "b", "a"}, {"b", "b", "b"},
	}
	if rel.Len() != len(want) {
		t.Fatalf("Len = %d, want %d: %v", rel.Len(), len(want), rel.Tuples())
	}
	for _, w := range want {
		if !rel.Contains(database.Tuple{w[0], w[1], w[2]}) {
			t.Errorf("missing p(%s, %s, %s)", w[0], w[1], w[2])
		}
	}
	if rel.Contains(database.Tuple{"a", "b", "a"}) {
		t.Error("repeated head variable bound to two different constants")
	}
}

// TestWideAtomLinearFallback drives an atom of arity 65 — too wide for
// the 64-bit index mask — through the scanLinear fallback, exercising
// constants, pre-bound variables, and repeated fresh variables on that
// path.
func TestWideAtomLinearFallback(t *testing.T) {
	const arity = 65
	mkArgs := func() []ast.Term {
		args := make([]ast.Term, arity)
		for i := range args {
			args[i] = ast.V(fmt.Sprintf("V%d", i))
		}
		return args
	}
	// Rule 1: w's first two columns carry the same fresh variable and
	// column 2 must be the constant k.
	args1 := mkArgs()
	args1[1] = ast.V("V0")
	args1[2] = ast.C("k")
	// Rule 2: V0 is pre-bound by s(V0) before the wide atom is matched.
	args2 := mkArgs()
	args2[2] = ast.C("k")
	prog := &ast.Program{Rules: []ast.Rule{
		{Head: ast.NewAtom("p", ast.V("V0"), ast.V(fmt.Sprintf("V%d", arity-1))),
			Body: []ast.Atom{{Pred: "w", Args: args1}}},
		{Head: ast.NewAtom("q", ast.V("V0")),
			Body: []ast.Atom{ast.NewAtom("s", ast.V("V0")), {Pred: "w", Args: args2}}},
	}}

	wide := func(first, second, third, last string) database.Tuple {
		tu := make(database.Tuple, arity)
		for i := range tu {
			tu[i] = "f"
		}
		tu[0], tu[1], tu[2], tu[arity-1] = first, second, third, last
		return tu
	}
	db := database.New()
	db.Add("w", wide("a", "a", "k", "z")) // matches rule 1
	db.Add("w", wide("a", "b", "k", "z")) // repeat check fails
	db.Add("w", wide("c", "c", "x", "z")) // constant check fails
	db.Add("s", database.Tuple{"a"})

	out, _, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := out.Lookup("p")
	if p == nil || p.Len() != 1 || !p.Contains(database.Tuple{"a", "z"}) {
		t.Errorf("p = %v, want exactly p(a, z)", p.Tuples())
	}
	// s(a) pre-binds V0; both w rows with first column a and third
	// column k match rule 2, deriving q(a) (deduplicated).
	q := out.Lookup("q")
	if q == nil || q.Len() != 1 || !q.Contains(database.Tuple{"a"}) {
		t.Errorf("q = %v, want exactly q(a)", q.Tuples())
	}
}

// TestMaxFactsAbortsMidRound pins the prompt-abort behavior: a single
// round that would derive 900 facts stops as soon as the bound is
// crossed instead of finishing the round.
func TestMaxFactsAbortsMidRound(t *testing.T) {
	prog := parser.MustProgram("p(X, Y) :- e(X), f(Y).")
	db := database.New()
	for i := 0; i < 30; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("a%d", i)})
		db.Add("f", database.Tuple{fmt.Sprintf("b%d", i)})
	}
	_, stats, err := Eval(prog, db, Options{MaxFacts: 10})
	if err == nil {
		t.Fatal("MaxFacts should abort")
	}
	if stats.Derived > 11 {
		t.Errorf("round overshot the bound: derived %d facts, limit 10", stats.Derived)
	}
}

// TestIndexMaintenanceIsIncremental verifies the persistent-index
// contract: the number of full-scan index builds depends only on the
// program's (predicate, column-mask) pairs — not on data size or round
// count — and per-round maintenance is O(new facts).
func TestIndexMaintenanceIsIncremental(t *testing.T) {
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- e(X, Y).
	`)
	chain := func(n int) *database.DB {
		db := database.New()
		for i := 0; i < n; i++ {
			db.Add("e", database.Tuple{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)})
		}
		return db
	}
	_, small, err := Eval(prog, chain(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, large, err := Eval(prog, chain(60), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if small.IndexBuilds != large.IndexBuilds {
		t.Errorf("index builds scale with data: %d (n=20) vs %d (n=60)",
			small.IndexBuilds, large.IndexBuilds)
	}
	if large.IndexBuilds == 0 || large.IndexHits == 0 {
		t.Fatalf("expected indexed evaluation, stats = %+v", large)
	}
	if large.Iterations < 10 {
		t.Fatalf("chain(60) should need many rounds, got %d", large.Iterations)
	}
	// Incremental maintenance: at most one posting-list append per
	// derived fact per live index — O(N), never a per-round rebuild.
	maxAppends := uint64(large.Derived) * large.IndexBuilds
	if large.IndexAppends > maxAppends {
		t.Errorf("index appends %d exceed O(N) bound %d", large.IndexAppends, maxAppends)
	}
	if large.SlabBytes == 0 || large.InternedConstants == 0 {
		t.Errorf("storage breakdown missing: %+v", large)
	}
}

// TestStatsIndexBuildsBoundedByMasks checks builds stay bounded by the
// distinct (predicate, mask) pairs even when many rounds run.
func TestStatsIndexBuildsBoundedByMasks(t *testing.T) {
	prog := parser.MustProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	db := database.New()
	for i := 0; i < 12; i++ {
		db.Add("up", database.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)})
		db.Add("down", database.Tuple{fmt.Sprintf("b%d", i+1), fmt.Sprintf("b%d", i)})
	}
	db.Add("flat", database.Tuple{"a12", "b12"})
	_, stats, err := Eval(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The program mentions at most one mask per (pred, body position):
	// a handful of indexes, regardless of the dozens of rounds.
	if stats.IndexBuilds > 6 {
		t.Errorf("IndexBuilds = %d, want a small program-bounded constant", stats.IndexBuilds)
	}
}
