package eval_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"datalogeq/internal/ast"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
)

// randProgram builds a small random (possibly recursive) safe program
// over binary EDB predicates e1, e2 and IDB predicates p, q.
func randProgram(rng *rand.Rand) *ast.Program {
	v := func(i int) ast.Term { return ast.V(fmt.Sprintf("V%d", i)) }
	preds := []string{"e1", "e2", "p", "q"}
	prog := &ast.Program{}
	nRules := 2 + rng.Intn(3)
	for r := 0; r < nRules; r++ {
		headPred := []string{"p", "q"}[rng.Intn(2)]
		nBody := 1 + rng.Intn(3)
		var body []ast.Atom
		for i := 0; i < nBody; i++ {
			pred := preds[rng.Intn(len(preds))]
			body = append(body, ast.NewAtom(pred, v(rng.Intn(4)), v(rng.Intn(4))))
		}
		// Safe head: reuse body variables.
		bv := ast.VarsOfAtoms(body)
		head := ast.NewAtom(headPred,
			ast.V(bv[rng.Intn(len(bv))]), ast.V(bv[rng.Intn(len(bv))]))
		prog.Rules = append(prog.Rules, ast.Rule{Head: head, Body: body})
	}
	return prog
}

// Property: naive and semi-naive evaluation compute identical fixpoints
// on random programs and databases.
func TestQuickNaiveSemiNaiveAgree(t *testing.T) {
	preds := map[string]int{"e1": 2, "e2": 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randProgram(rng)
		db := gen.RandomDB(rng, preds, 4, 6)
		a, _, err := eval.Eval(prog, db, eval.Options{})
		if err != nil {
			return false
		}
		b, _, err := eval.Eval(prog, db, eval.Options{Naive: true})
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: evaluation is monotone in the database — adding facts never
// removes derived tuples.
func TestQuickMonotonicity(t *testing.T) {
	preds := map[string]int{"e1": 2, "e2": 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randProgram(rng)
		small := gen.RandomDB(rng, preds, 4, 4)
		big := small.Clone()
		extra := gen.RandomDB(rng, preds, 4, 3)
		for _, p := range extra.Preds() {
			for _, tup := range extra.Lookup(p).Tuples() {
				big.Add(p, tup)
			}
		}
		rs, _, err := eval.Eval(prog, small, eval.Options{})
		if err != nil {
			return false
		}
		rb, _, err := eval.Eval(prog, big, eval.Options{})
		if err != nil {
			return false
		}
		for _, p := range rs.Preds() {
			for _, tup := range rs.Lookup(p).Tuples() {
				if !rb.Contains(p, tup) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the fixpoint is a model — re-running evaluation on the
// output derives nothing new.
func TestQuickFixpointIsStable(t *testing.T) {
	preds := map[string]int{"e1": 2, "e2": 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randProgram(rng)
		db := gen.RandomDB(rng, preds, 4, 5)
		once, _, err := eval.Eval(prog, db, eval.Options{})
		if err != nil {
			return false
		}
		twice, _, err := eval.Eval(prog, once, eval.Options{})
		if err != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
