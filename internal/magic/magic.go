// Package magic implements the generalized magic-sets transformation:
// goal-directed rewriting of a Datalog program for a query with a given
// binding pattern, so that bottom-up evaluation only derives facts
// relevant to the query. This is the classical optimization setting the
// paper's containment problems come from (cf. [BR86, RSUV93]): the
// rewritten program is *equivalent to the original with respect to the
// query*, and deciding such equivalences is what the rest of this
// library is about.
//
// The transformation uses left-to-right sideways information passing:
// rules are adorned by propagating bound arguments through the body,
// magic predicates collect the bindings each IDB subgoal is called
// with, and every adorned rule is guarded by its magic filter.
package magic

import (
	"fmt"
	"strings"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
)

// Adornment is a binding pattern: one 'b' (bound) or 'f' (free) per
// argument position.
type Adornment string

// Bound reports whether position i is bound.
func (a Adornment) Bound(i int) bool { return a[i] == 'b' }

// AdornmentFor computes the adornment of a query atom: argument
// positions holding constants are bound.
func AdornmentFor(q ast.Atom) Adornment {
	b := make([]byte, len(q.Args))
	for i, t := range q.Args {
		if t.Kind == ast.Const {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	return Adornment(b)
}

func adornedName(pred string, a Adornment) string {
	if len(a) == 0 {
		return pred
	}
	return pred + "_" + string(a)
}

func magicName(pred string, a Adornment) string {
	return "m_" + adornedName(pred, a)
}

// Result is the output of the transformation.
type Result struct {
	// Program is the rewritten program: adorned rules with magic
	// guards, magic rules, and the seed fact.
	Program *ast.Program
	// GoalPred is the adorned goal predicate to query in Program.
	GoalPred string
	// Seed is the magic seed atom derived from the query constants.
	Seed ast.Atom
}

// Transform rewrites prog for the query atom (whose constant positions
// are the bound arguments). The query's predicate must be intensional.
func Transform(prog *ast.Program, query ast.Atom) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	sym := query.Sym()
	if !prog.IsIDB(sym) {
		return nil, fmt.Errorf("magic: query predicate %s is not intensional", sym)
	}
	isIDB := prog.IDBPreds()
	goalAd := AdornmentFor(query)

	out := &ast.Program{}
	type job struct {
		sym ast.PredSym
		ad  Adornment
	}
	seen := map[string]bool{}
	var queue []job
	push := func(s ast.PredSym, ad Adornment) {
		k := s.String() + "/" + string(ad)
		if !seen[k] {
			seen[k] = true
			queue = append(queue, job{s, ad})
		}
	}
	push(sym, goalAd)

	for qi := 0; qi < len(queue); qi++ {
		j := queue[qi]
		for _, r := range prog.RulesFor(j.sym) {
			adorned, err := adornRule(r, j.ad, isIDB, push)
			if err != nil {
				return nil, err
			}
			out.Rules = append(out.Rules, adorned...)
		}
	}

	// Seed: the magic fact for the query's bound constants.
	var seedArgs []ast.Term
	for i, t := range query.Args {
		if goalAd.Bound(i) {
			seedArgs = append(seedArgs, t)
		}
	}
	seed := ast.Atom{Pred: magicName(query.Pred, goalAd), Args: seedArgs}
	out.Rules = append(out.Rules, ast.Rule{Head: seed})

	return &Result{
		Program:  out,
		GoalPred: adornedName(query.Pred, goalAd),
		Seed:     seed,
	}, nil
}

// adornRule adorns one rule for the head adornment and emits the
// guarded adorned rule plus one magic rule per IDB subgoal. push
// registers newly needed (predicate, adornment) pairs.
func adornRule(r ast.Rule, headAd Adornment, isIDB map[ast.PredSym]bool, push func(ast.PredSym, Adornment)) ([]ast.Rule, error) {
	// Bound variables: head variables at bound positions.
	bound := map[string]bool{}
	for i, t := range r.Head.Args {
		if headAd.Bound(i) && t.Kind == ast.Var {
			bound[t.Name] = true
		}
	}
	// The magic guard for this rule.
	var guardArgs []ast.Term
	for i, t := range r.Head.Args {
		if headAd.Bound(i) {
			guardArgs = append(guardArgs, t)
		}
	}
	guard := ast.Atom{Pred: magicName(r.Head.Pred, headAd), Args: guardArgs}

	var rules []ast.Rule
	newBody := []ast.Atom{guard}
	for _, a := range r.Body {
		if !isIDB[a.Sym()] {
			newBody = append(newBody, a)
			for _, v := range a.Vars(nil) {
				bound[v] = true
			}
			continue
		}
		// Adorn the IDB subgoal from the currently bound variables.
		ad := make([]byte, len(a.Args))
		var magicArgs []ast.Term
		for i, t := range a.Args {
			if t.Kind == ast.Const || (t.Kind == ast.Var && bound[t.Name]) {
				ad[i] = 'b'
				magicArgs = append(magicArgs, t)
			} else {
				ad[i] = 'f'
			}
		}
		subAd := Adornment(ad)
		push(a.Sym(), subAd)
		// Magic rule: the subgoal is called with these bindings
		// whenever the guard and the preceding body hold.
		magicHead := ast.Atom{Pred: magicName(a.Pred, subAd), Args: magicArgs}
		magicBody := make([]ast.Atom, len(newBody))
		copy(magicBody, newBody)
		rules = append(rules, ast.Rule{Head: magicHead, Body: magicBody})
		// Rewrite the subgoal to its adorned predicate and continue;
		// after the call every variable of the subgoal is bound.
		newBody = append(newBody, ast.Atom{Pred: adornedName(a.Pred, subAd), Args: a.Args})
		for _, v := range a.Vars(nil) {
			bound[v] = true
		}
	}
	adornedHead := ast.Atom{Pred: adornedName(r.Head.Pred, headAd), Args: r.Head.Args}
	rules = append(rules, ast.Rule{Head: adornedHead, Body: newBody})
	return rules, nil
}

// Answer evaluates the query through the magic-sets rewriting and
// returns the matching tuples of the original query atom. It is
// AnswerOpt with default options.
func Answer(prog *ast.Program, query ast.Atom, db *database.DB) (*database.Relation, eval.Stats, error) {
	return AnswerOpt(prog, query, db, eval.Options{})
}

// AnswerOpt is Answer under explicit evaluation options. The rewritten
// program runs through eval's cost-based planner like any other — magic
// guards are just small relations the cost model naturally orders
// first — so goal-directed filtering and cardinality-driven join
// ordering compose.
func AnswerOpt(prog *ast.Program, query ast.Atom, db *database.DB, opts eval.Options) (*database.Relation, eval.Stats, error) {
	res, err := Transform(prog, query)
	if err != nil {
		return nil, eval.Stats{}, err
	}
	rel, stats, err := eval.Goal(res.Program, db, res.GoalPred, opts)
	if err != nil {
		return nil, stats, err
	}
	// Filter to tuples matching the query constants (bound positions
	// are enforced by magic, but a rule head may bind them otherwise;
	// filter defensively) and consistent with repeated variables. The
	// filter runs on interned rows: query constants are interned once
	// and rows stream out of the relation's slab through a scratch row.
	out := database.NewRelation(len(query.Args))
	qrow := compileQueryRow(query)
	var row database.Row
	for i := 0; i < rel.Len(); i++ {
		row = rel.AppendRowAt(row[:0], i)
		if matchesRow(qrow, row) {
			out.AddRow(row)
		}
	}
	return out, stats, nil
}

// queryArg is one compiled query position: a constant ID to equal, or
// the position of the first occurrence of its variable.
type queryArg struct {
	isConst  bool
	id       uint32
	firstPos int
}

func compileQueryRow(q ast.Atom) []queryArg {
	out := make([]queryArg, len(q.Args))
	first := map[string]int{}
	for i, arg := range q.Args {
		if arg.Kind == ast.Const {
			out[i] = queryArg{isConst: true, id: database.Intern(arg.Name)}
			continue
		}
		p, ok := first[arg.Name]
		if !ok {
			p = i
			first[arg.Name] = i
		}
		out[i] = queryArg{firstPos: p}
	}
	return out
}

func matchesRow(q []queryArg, row database.Row) bool {
	for i, a := range q {
		if a.isConst {
			if row[i] != a.id {
				return false
			}
		} else if row[i] != row[a.firstPos] {
			return false
		}
	}
	return true
}

// Describe renders the transformation compactly for debugging.
func (r *Result) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% goal: %s, seed: %s\n", r.GoalPred, r.Seed)
	b.WriteString(r.Program.String())
	return b.String()
}
