package magic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"
)

func TestAdornmentFor(t *testing.T) {
	q := parser.MustAtom("p(a, X, b)")
	if got := AdornmentFor(q); got != "bfb" {
		t.Errorf("AdornmentFor = %q", got)
	}
	if !Adornment("bf").Bound(0) || Adornment("bf").Bound(1) {
		t.Error("Bound wrong")
	}
}

func TestTransformRejectsEDBQuery(t *testing.T) {
	prog := gen.TransitiveClosure()
	if _, err := Transform(prog, parser.MustAtom("e(a, X)")); err == nil {
		t.Error("EDB query accepted")
	}
}

func TestMagicTransitiveClosure(t *testing.T) {
	prog := gen.TransitiveClosure()
	db := database.MustParse(`
		e(a, b). e(b, c). b(c, d).
		e(x, y). b(y, z).
	`)
	query := parser.MustAtom("p(a, X)")
	rel, _, err := Answer(prog, query, db)
	if err != nil {
		t.Fatal(err)
	}
	// Direct evaluation, filtered.
	direct, _, err := eval.Goal(prog, db, "p", eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := database.NewRelation(2)
	for _, tu := range direct.Tuples() {
		if tu[0] == "a" {
			want.Add(tu)
		}
	}
	if !rel.Equal(want) {
		t.Errorf("magic %v vs direct %v", rel.Tuples(), want.Tuples())
	}
	if want.Len() == 0 {
		t.Fatal("test vacuous")
	}
}

// Magic evaluation does less work: the x/y component is never touched
// when querying from a.
func TestMagicPrunesIrrelevantFacts(t *testing.T) {
	prog := gen.TransitiveClosure()
	db := database.New()
	// A long chain reachable from the query constant, plus a much
	// larger irrelevant component.
	for i := 0; i < 5; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)})
	}
	db.Add("b", database.Tuple{"a5", "a6"})
	for i := 0; i < 200; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("z%d", i), fmt.Sprintf("z%d", i+1)})
		db.Add("b", database.Tuple{fmt.Sprintf("z%d", i), fmt.Sprintf("z%d", i+1)})
	}
	query := parser.MustAtom("p(a0, X)")
	_, magicStats, err := Answer(prog, query, db)
	if err != nil {
		t.Fatal(err)
	}
	_, directStats, err := eval.Goal(prog, db, "p", eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if magicStats.Derived >= directStats.Derived {
		t.Errorf("magic derived %d facts, direct %d; magic should prune",
			magicStats.Derived, directStats.Derived)
	}
}

func TestMagicSameGeneration(t *testing.T) {
	prog := parser.MustProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	db := database.MustParse(`
		up(a, e). up(b, f). flat(e, f). flat(g, g).
		down(f, b). down(e, a).
	`)
	query := parser.MustAtom("sg(a, X)")
	rel, _, err := Answer(prog, query, db)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := eval.Goal(prog, db, "sg", eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := database.NewRelation(2)
	for _, tu := range direct.Tuples() {
		if tu[0] == "a" {
			want.Add(tu)
		}
	}
	if !rel.Equal(want) {
		t.Errorf("magic %v vs direct %v", rel.Tuples(), want.Tuples())
	}
}

func TestMagicAllFreeQuery(t *testing.T) {
	// An all-free query degenerates to full evaluation.
	prog := gen.TransitiveClosure()
	db := database.MustParse("e(a, b). b(b, c).")
	rel, _, err := Answer(prog, parser.MustAtom("p(X, Y)"), db)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := eval.Goal(prog, db, "p", eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(direct) {
		t.Errorf("magic %v vs direct %v", rel.Tuples(), direct.Tuples())
	}
}

func TestMagicRepeatedQueryVariable(t *testing.T) {
	prog := gen.TransitiveClosure()
	db := database.MustParse("e(a, b). b(b, a). b(c, c).")
	// p(X, X): self-reachability.
	rel, _, err := Answer(prog, parser.MustAtom("p(X, X)"), db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range rel.Tuples() {
		if tu[0] != tu[1] {
			t.Errorf("non-diagonal answer %v", tu)
		}
	}
	if !rel.Contains(database.Tuple{"a", "a"}) || !rel.Contains(database.Tuple{"c", "c"}) {
		t.Errorf("missing diagonal answers: %v", rel.Tuples())
	}
}

// Property: magic-sets answers equal directly-evaluated answers
// filtered by the query pattern, on random programs, queries, and
// databases.
func TestQuickMagicAgreesWithDirect(t *testing.T) {
	preds := map[string]int{"e1": 2, "e2": 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randProgram(rng)
		db := gen.RandomDB(rng, preds, 4, 6)
		// Random query: p or q (whichever the program defines) with a
		// randomly bound first argument.
		pred := []string{"p", "q"}[rng.Intn(2)]
		if !prog.IsIDB(ast.PredSym{Name: pred, Arity: 2}) {
			return true // query predicate undefined; nothing to check
		}
		var queryArgs []ast.Term
		if rng.Intn(2) == 0 {
			queryArgs = []ast.Term{ast.C(fmt.Sprintf("c%d", rng.Intn(4))), ast.V("X")}
		} else {
			queryArgs = []ast.Term{ast.V("X"), ast.V("Y")}
		}
		query := ast.Atom{Pred: pred, Args: queryArgs}
		magicRel, _, err := Answer(prog, query, db)
		if err != nil {
			return false
		}
		direct, _, err := eval.Goal(prog, db, pred, eval.Options{})
		if err != nil {
			return false
		}
		want := database.NewRelation(2)
		qrow := compileQueryRow(query)
		var row database.Row
		for i := 0; i < direct.Len(); i++ {
			row = direct.AppendRowAt(row[:0], i)
			if matchesRow(qrow, row) {
				want.AddRow(row)
			}
		}
		return magicRel.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randProgram builds a small random safe program with IDB preds p, q
// over EDB e1, e2 (mirrors the eval tests' generator).
func randProgram(rng *rand.Rand) *ast.Program {
	v := func(i int) ast.Term { return ast.V(fmt.Sprintf("V%d", i)) }
	preds := []string{"e1", "e2", "p", "q"}
	prog := &ast.Program{}
	nRules := 2 + rng.Intn(3)
	for r := 0; r < nRules; r++ {
		headPred := []string{"p", "q"}[rng.Intn(2)]
		nBody := 1 + rng.Intn(3)
		var body []ast.Atom
		for i := 0; i < nBody; i++ {
			pred := preds[rng.Intn(len(preds))]
			body = append(body, ast.NewAtom(pred, v(rng.Intn(4)), v(rng.Intn(4))))
		}
		bv := ast.VarsOfAtoms(body)
		head := ast.NewAtom(headPred,
			ast.V(bv[rng.Intn(len(bv))]), ast.V(bv[rng.Intn(len(bv))]))
		prog.Rules = append(prog.Rules, ast.Rule{Head: head, Body: body})
	}
	return prog
}
