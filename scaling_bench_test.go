// Multicore scaling families for the parallel engine (PR 3). Run with
//
//	go test -run=NONE -bench=Scaling -cpu 1,2,4,8 .
//
// Every benchmark passes Workers: 0, which sizes the worker pool to
// GOMAXPROCS — exactly what -cpu varies — so one family measures the
// sequential engine at -cpu 1 and the parallel engine at every higher
// count, with bit-identical outputs by construction (the determinism
// tests in internal/eval, internal/treeauto, and internal/core pin
// that). Pipe the output through cmd/benchjson to produce the
// BENCH_PR3.json trajectory file; the raw lines stay benchstat-ready.
package datalogeq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"datalogeq/internal/core"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/ucq"
)

// --- Evaluation: transitive closure over the three graph shapes. The
// chain is long and thin (many rounds, small deltas), the grid is dense
// (few rounds, wide deltas — the parallel sweet spot), and the random
// graph sits between.

func BenchmarkScalingEval(b *testing.B) {
	prog := gen.TransitiveClosure()
	rng := rand.New(rand.NewSource(1))
	workloads := []struct {
		name string
		db   *database.DB
	}{
		{"chain200", gen.ChainGraph(200)},
		{"grid12x12", gen.GridGraph(12, 12)},
		{"random80x400", gen.RandomGraph(rng, 80, 400)},
	}
	for _, w := range workloads {
		b.Run(w.name, func(b *testing.B) {
			var stats eval.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := eval.Eval(prog, w.db, eval.Options{Workers: 0})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Derived), "derived")
			b.ReportMetric(float64(stats.Iterations), "rounds")
		})
	}
}

// --- Containment: the E3 family (tree-automaton fan-out over theta
// disjuncts plus block-parallel antichain firing) and the E10
// equivalence family (both directions concurrent).

func BenchmarkScalingContainment(b *testing.B) {
	prog := gen.TransitiveClosure()
	for _, k := range []int{4, 5} {
		b.Run(fmt.Sprintf("E3/k=%d", k), func(b *testing.B) {
			q := gen.TCPathsUCQ(k)
			for i := 0; i < b.N; i++ {
				res, err := core.ContainsUCQ(prog, "p", q, core.Options{Workers: 0})
				if err != nil {
					b.Fatal(err)
				}
				if res.Contained {
					b.Fatal("TC is not contained in bounded paths")
				}
			}
		})
	}
	b.Run("E10/trendy", func(b *testing.B) {
		recursive := gen.Example11Trendy()
		nonrecursive := gen.Example11TrendyNR()
		for i := 0; i < b.N; i++ {
			res, err := core.EquivalentToNonrecursive(
				recursive, "buys", nonrecursive, core.Options{Workers: 0})
			if err != nil || !res.Equivalent {
				b.Fatalf("want equivalent, got %v %v", res.Equivalent, err)
			}
		}
	})
}

// --- UCQ-level fan-out: every disjunct of u is checked against v on
// its own worker (Sagiv–Yannakakis, per-CQ checks independent).

func BenchmarkScalingUCQ(b *testing.B) {
	u := gen.TCPathsUCQ(6)
	v := gen.TCPathsUCQ(6)
	for i := 0; i < b.N; i++ {
		if !ucq.ContainedInUCQ(u, v) {
			b.Fatal("self-containment must hold")
		}
	}
}
