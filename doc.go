// Package datalogeq is a reproduction of Chaudhuri & Vardi, "On the
// Equivalence of Recursive and Nonrecursive Datalog Programs" (PODS
// 1992; JCSS 54(1), 1997): a complete Datalog containment and
// equivalence engine.
//
// The implementation lives under internal/:
//
//   - internal/ast, internal/parser: Datalog syntax and analysis
//   - internal/database, internal/eval: the extensional store and
//     bottom-up (semi-)naive evaluation
//   - internal/cq, internal/ucq: conjunctive-query theory — containment
//     mappings, canonical databases, minimization, Sagiv–Yannakakis
//   - internal/expansion: expansion/unfolding/proof trees, the
//     connectedness relation, strong containment mappings
//   - internal/wordauto, internal/treeauto: word and tree automata with
//     Boolean operations, emptiness, and antichain containment
//   - internal/core: the paper's decision procedures (Propositions
//     5.9/5.10, Theorems 5.11/5.12, 6.4/6.5)
//   - internal/nonrec: unfolding and inlining of nonrecursive programs
//   - internal/tm: Turing-machine substrate and the §5.3/§6 lower-bound
//     encodings
//   - internal/gen: paper example families and random workloads
//
// Command-line tools are under cmd/ (datalog, equiv, lowerbound) and
// runnable examples under examples/. The benchmarks in bench_test.go
// regenerate every experiment indexed in EXPERIMENTS.md.
package datalogeq
