module datalogeq

go 1.22
