// Benchmark harness: one benchmark (family) per experiment in
// EXPERIMENTS.md. Run with
//
//	go test -bench=. -benchmem
//
// Custom metrics report the quantities the paper's analysis is about:
// automata sizes (letters, states), unfolding sizes (disjuncts, atoms),
// and encoding sizes, alongside wall-clock time.
package datalogeq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"datalogeq/internal/core"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/expansion"
	"datalogeq/internal/gen"
	"datalogeq/internal/magic"
	"datalogeq/internal/nonrec"
	"datalogeq/internal/parser"
	"datalogeq/internal/tm"
	"datalogeq/internal/treeauto"
	"datalogeq/internal/ucq"
)

// --- E1: Example 1.1 — equivalence of the paper's motivating programs.

func BenchmarkE1_Example11(b *testing.B) {
	b.Run("trendy-equivalent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.EquivalentToNonrecursive(
				gen.Example11Trendy(), "buys", gen.Example11TrendyNR(), core.Options{})
			if err != nil || !res.Equivalent {
				b.Fatalf("want equivalent, got %v %v", res.Equivalent, err)
			}
		}
	})
	b.Run("knows-inequivalent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.EquivalentToNonrecursive(
				gen.Example11Knows(), "buys", gen.Example11KnowsNR(), core.Options{})
			if err != nil || res.Equivalent {
				b.Fatalf("want inequivalent, got %v %v", res.Equivalent, err)
			}
		}
	})
}

// --- E2: Figures 1 and 2 — expansion, unfolding, and proof trees.

func BenchmarkE2_Trees(b *testing.B) {
	prog := gen.TransitiveClosure()
	b.Run("unfoldings-h6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trees := expansion.Unfoldings(prog, "p", 6, 0)
			if len(trees) != 6 {
				b.Fatalf("got %d trees", len(trees))
			}
		}
	})
	b.Run("prooftrees-h2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trees := expansion.ProofTrees(prog, "p", 2, 0)
			if len(trees) != 36*7 {
				b.Fatalf("got %d trees", len(trees))
			}
		}
	})
	b.Run("connectedness", func(b *testing.B) {
		trees := expansion.ProofTrees(prog, "p", 3, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, tr := range trees {
				expansion.Connect(tr)
			}
		}
	})
}

// --- E3: Theorem 5.12 — containment in a UCQ, scaling sweeps.

func BenchmarkE3_ContainUCQ_TCPaths(b *testing.B) {
	prog := gen.TransitiveClosure()
	for k := 1; k <= 6; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			q := gen.TCPathsUCQ(k)
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.ContainsUCQ(prog, "p", q, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Contained {
					b.Fatal("TC is not contained in bounded paths")
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Letters), "letters")
			b.ReportMetric(float64(stats.PtreeStates), "ptree-states")
			b.ReportMetric(float64(stats.ThetaStates), "theta-states")
		})
	}
}

func BenchmarkE3_ContainUCQ_Contained(b *testing.B) {
	// The trendy program against its faithful unfolding: a positive
	// instance, which must saturate the full fixpoint.
	prog := gen.Example11Trendy()
	q, err := nonrec.Unfold(gen.Example11TrendyNR(), "buys")
	if err != nil {
		b.Fatal(err)
	}
	var stats core.Stats
	for i := 0; i < b.N; i++ {
		res, err := core.ContainsUCQ(prog, "buys", q, core.Options{})
		if err != nil || !res.Contained {
			b.Fatalf("want contained: %v %v", res.Contained, err)
		}
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.Letters), "letters")
	b.ReportMetric(float64(stats.ThetaStates), "theta-states")
}

func BenchmarkE3_ContainUCQ_ChainProgram(b *testing.B) {
	// varnum grows with the chain length k: the alphabet is
	// exponential in the rule width (the paper's size analysis).
	for k := 1; k <= 2; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			prog := gen.ChainProgram(k)
			q := ucq.New(gen.TCPathCQ(1))
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				res, err := core.ContainsUCQ(prog, "p", q, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Contained {
					b.Fatal("chain program not contained in single path")
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.Letters), "letters")
			b.ReportMetric(float64(stats.PtreeStates), "ptree-states")
		})
	}
}

// --- E4: linear programs — word-automaton vs tree-automaton procedure.

func BenchmarkE4_LinearVsTree(b *testing.B) {
	prog := gen.TransitiveClosure()
	q := gen.TCPathsUCQ(3)
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ContainsUCQ(prog, "p", q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("word", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ContainsUCQLinear(prog, "p", q, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5: Examples 6.1–6.3 — unfolding blowup of nonrecursive programs.

func BenchmarkE5_UnfoldBlowup(b *testing.B) {
	for n := 2; n <= 6; n += 2 {
		b.Run(fmt.Sprintf("dist/n=%d", n), func(b *testing.B) {
			prog := gen.DistProgram(n)
			var stats nonrec.Stats
			for i := 0; i < b.N; i++ {
				s, err := nonrec.UnfoldStats(prog, gen.DistGoal(n))
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.MaxAtoms), "max-atoms")
		})
	}
	for n := 1; n <= 3; n++ {
		b.Run(fmt.Sprintf("distle/n=%d", n), func(b *testing.B) {
			prog := gen.DistLeProgram(n)
			var stats nonrec.Stats
			for i := 0; i < b.N; i++ {
				s, err := nonrec.UnfoldStats(prog, fmt.Sprintf("distle%d", n))
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Disjuncts), "disjuncts")
		})
	}
	for n := 1; n <= 3; n++ {
		b.Run(fmt.Sprintf("equal/n=%d", n), func(b *testing.B) {
			prog := gen.EqualProgram(n)
			var stats nonrec.Stats
			for i := 0; i < b.N; i++ {
				s, err := nonrec.UnfoldStats(prog, fmt.Sprintf("equal%d", n))
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Disjuncts), "disjuncts")
		})
	}
}

// --- E6: Example 6.6 / Theorem 6.7 — linear nonrecursive programs:
// exponentially many disjuncts, each of linear size.

func BenchmarkE6_LinearNonrec(b *testing.B) {
	for n := 2; n <= 8; n += 2 {
		b.Run(fmt.Sprintf("word/n=%d", n), func(b *testing.B) {
			prog := gen.WordProgram(n)
			var stats nonrec.Stats
			for i := 0; i < b.N; i++ {
				s, err := nonrec.UnfoldStats(prog, fmt.Sprintf("word%d", n))
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Disjuncts), "disjuncts")
			b.ReportMetric(float64(stats.MaxAtoms), "max-atoms")
		})
	}
}

// --- E7: §5.3 and §6 lower-bound encodings — generation and
// database-level verification.

func lbMachine() *tm.Machine {
	return &tm.Machine{
		States:      []string{"s0", "s1", "qa"},
		TapeSymbols: []string{"_", "1"},
		Blank:       "_",
		Start:       "s0",
		Accept:      []string{"qa"},
		Transitions: []tm.Transition{
			{State: "s0", Read: "_", Write: "1", Move: tm.Right, NewState: "s1"},
			{State: "s1", Read: "_", Write: "_", Move: tm.Stay, NewState: "qa"},
		},
	}
}

func BenchmarkE7_LowerBound53(b *testing.B) {
	m := lbMachine()
	for n := 1; n <= 4; n++ {
		b.Run(fmt.Sprintf("generate/n=%d", n), func(b *testing.B) {
			var stats tm.Stats
			for i := 0; i < b.N; i++ {
				e, err := tm.Encode53(m, n)
				if err != nil {
					b.Fatal(err)
				}
				stats = e.Stats()
			}
			b.ReportMetric(float64(stats.Rules), "rules")
			b.ReportMetric(float64(stats.ErrorQueries), "error-queries")
		})
	}
	b.Run("verify-separation/n=1", func(b *testing.B) {
		e, err := tm.Encode53(m, 1)
		if err != nil {
			b.Fatal(err)
		}
		run, _ := m.AcceptingRun(2)
		db, err := e.ComputationDB(run)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel, _, err := eval.Goal(e.Program, db, tm.Goal, eval.Options{})
			if err != nil || rel.Len() == 0 {
				b.Fatal("program must derive C")
			}
			caught, err := e.Errors.Holds(db, nil)
			if err != nil || caught {
				b.Fatal("errors must not fire on a valid computation")
			}
		}
	})
}

func BenchmarkE7_LowerBound6(b *testing.B) {
	m := lbMachine()
	for n := 1; n <= 4; n++ {
		b.Run(fmt.Sprintf("generate/n=%d", n), func(b *testing.B) {
			var stats tm.Stats
			for i := 0; i < b.N; i++ {
				e, err := tm.Encode6(m, n)
				if err != nil {
					b.Fatal(err)
				}
				stats = e.Stats()
			}
			b.ReportMetric(float64(stats.Rules), "pi-rules")
			b.ReportMetric(float64(stats.ErrorQueries), "filter-rules")
		})
	}
}

// --- E8: the CK86 direction — CQ ⊆ program via canonical databases.

func BenchmarkE8_CQInProgram(b *testing.B) {
	prog := gen.TransitiveClosure()
	for k := 2; k <= 16; k *= 2 {
		b.Run(fmt.Sprintf("path/k=%d", k), func(b *testing.B) {
			q := gen.TCPathCQ(k)
			for i := 0; i < b.N; i++ {
				ok, err := core.CQContainedInProgram(q, prog, "p")
				if err != nil || !ok {
					b.Fatalf("path-%d must be contained: %v %v", k, ok, err)
				}
			}
		})
	}
}

// --- E9: evaluation substrate — naive vs semi-naive.

func BenchmarkE9_Eval(b *testing.B) {
	prog := gen.TransitiveClosure()
	rng := rand.New(rand.NewSource(1))
	dbs := map[string]interface{ FactCount() int }{}
	chain := gen.ChainGraph(60)
	random := gen.RandomGraph(rng, 40, 120)
	_ = dbs
	for _, cfg := range []struct {
		name  string
		naive bool
	}{{"seminaive", false}, {"naive", true}} {
		b.Run("chain60/"+cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(prog, chain, eval.Options{Naive: cfg.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("random40x120/"+cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(prog, random, eval.Options{Naive: cfg.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Storage engine: the interned-constant substrate on the canonical
// transitive-closure workload. The seed's string-keyed store ran
// chain60 semi-naive at ~1.46 ms/op with ~12,000 allocs/op; the slab
// engine with persistent incremental indexes runs the same workload in
// a fraction of that with two orders of magnitude fewer allocations
// (current numbers are reported by -benchmem; custom metrics surface
// the index-maintenance counters that prove rounds never rebuild).

func BenchmarkEvalTransitiveClosure(b *testing.B) {
	prog := gen.TransitiveClosure()
	rng := rand.New(rand.NewSource(1))
	workloads := []struct {
		name string
		db   *database.DB
	}{
		{"chain60", gen.ChainGraph(60)},
		{"random40x120", gen.RandomGraph(rng, 40, 120)},
	}
	for _, w := range workloads {
		b.Run(w.name, func(b *testing.B) {
			var stats eval.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := eval.Eval(prog, w.db, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Derived), "derived")
			b.ReportMetric(float64(stats.IndexHits), "index-hits")
			b.ReportMetric(float64(stats.IndexBuilds), "index-builds")
			b.ReportMetric(float64(stats.IndexAppends), "index-appends")
			b.ReportMetric(float64(stats.SlabBytes), "slab-bytes")
		})
	}
}

// --- E10: Theorem 6.5 end-to-end — equivalence with automata-size
// accounting.

func BenchmarkE10_Equivalence(b *testing.B) {
	var res core.EquivResult
	for i := 0; i < b.N; i++ {
		r, err := core.EquivalentToNonrecursive(
			gen.Example11Trendy(), "buys", gen.Example11TrendyNR(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.Stats.Letters), "letters")
	b.ReportMetric(float64(res.Stats.PtreeStates), "ptree-states")
	b.ReportMetric(float64(res.Stats.ThetaStates), "theta-states")
	b.ReportMetric(float64(res.UnfoldedDisjuncts), "disjuncts")
}

// --- Ablation: witness depth as the UCQ frontier grows — the
// counterexample is always one step beyond the covered paths.

func BenchmarkAblation_WitnessDepth(b *testing.B) {
	prog := gen.TransitiveClosure()
	for k := 1; k <= 3; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			q := gen.TCPathsUCQ(k)
			depth := 0
			for i := 0; i < b.N; i++ {
				res, err := core.ContainsUCQ(prog, "p", q, core.Options{})
				if err != nil || res.Contained {
					b.Fatal("expected non-containment")
				}
				depth = res.Witness.Tree.Depth()
			}
			b.ReportMetric(float64(depth), "witness-depth")
		})
	}
}

// --- Ablation: antichain containment vs the classical complement-based
// reduction on the tree-automata substrate (Proposition 4.6). The
// classical route determinizes the right automaton over its full ranked
// alphabet; the antichain route explores only reachable minimal
// subsets.

func BenchmarkAblation_TreeContainment(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	// A fixed pool of random automata pairs.
	type pair struct{ x, y *treeauto.TA }
	var pairs []pair
	for len(pairs) < 16 {
		x := randomTreeAutomaton(rng, 3)
		y := randomTreeAutomaton(rng, 3)
		pairs = append(pairs, pair{x, y})
	}
	b.Run("antichain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			treeauto.Contains(p.x, p.y)
		}
	})
	b.Run("classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			treeauto.ContainsClassical(p.x, p.y)
		}
	})
}

func randomTreeAutomaton(rng *rand.Rand, n int) *treeauto.TA {
	t := treeauto.New(n, 3)
	t.AddStart(rng.Intn(n))
	for s := 0; s < n; s++ {
		if rng.Intn(2) == 0 {
			t.AddTransition(s, rng.Intn(2), nil)
		}
		for k := rng.Intn(3); k > 0; k-- {
			t.AddTransition(s, 2, []int{rng.Intn(n), rng.Intn(n)})
		}
	}
	return t
}

// --- Substrate: magic-sets rewriting vs direct evaluation on a bound
// query (goal-directed evaluation prunes the irrelevant component).

func BenchmarkSubstrate_MagicSets(b *testing.B) {
	prog := gen.TransitiveClosure()
	db := database.New()
	for i := 0; i < 10; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1)})
	}
	db.Add("b", database.Tuple{"a10", "a11"})
	for i := 0; i < 150; i++ {
		db.Add("e", database.Tuple{fmt.Sprintf("z%d", i), fmt.Sprintf("z%d", i+1)})
		db.Add("b", database.Tuple{fmt.Sprintf("z%d", i), fmt.Sprintf("z%d", i+1)})
	}
	query := parser.MustAtom("p(a0, X)")
	b.Run("magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.Answer(prog, query, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Goal(prog, db, "p", eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate: Yannakakis evaluation vs generic join on an acyclic
// chain query.

func BenchmarkSubstrate_Yannakakis(b *testing.B) {
	// A layered complete-bipartite graph: w^(L-1) partial paths but only
	// w^2 distinct (start, end) answers — the workload where
	// output-sensitive evaluation pays off.
	q := gen.PathCQ("q", 4)
	db := database.New()
	const w = 10
	for layer := 0; layer < 4; layer++ {
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				db.Add("e", database.Tuple{
					fmt.Sprintf("n%d_%d", layer, i),
					fmt.Sprintf("n%d_%d", layer+1, j),
				})
			}
		}
	}
	b.Run("yannakakis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.EvalYannakakis(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Apply(db); err != nil {
				b.Fatal(err)
			}
		}
	})
}
