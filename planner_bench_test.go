// Planner benchmark families (PR 6): the same evaluation measured with
// the cost-based join planner on ("planned") and off ("fixed", the
// historical textual left-to-right order). Run with
//
//	go test -run=NONE -bench=PlannerEval .
//
// The two modes derive bit-identical fixpoints (the differential tests
// in internal/eval pin that), so the ratio of their ns/op is purely the
// join-order effect. The star-join family is the headline: its
// selective atom is textually last, so the fixed order enumerates
// keys/selKeys times more intermediate rows than the planned order.
// Everything runs single-worker to keep the measurement free of
// scheduling noise; pipe through cmd/benchjson for BENCH_PR6.json.
package datalogeq_test

import (
	"math/rand"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
)

func BenchmarkPlannerEval(b *testing.B) {
	tc := gen.TransitiveClosure()
	rng := rand.New(rand.NewSource(1))
	// Sized so the join work dwarfs Eval's per-call fixed costs (EDB
	// clone, domain interning, index builds): the fixed order touches
	// ~keys*fanout^dims intermediate rows, the planned order
	// ~selKeys*fanout^dims.
	starProg, starDB := gen.StarJoin(3, 100, 20, 2)
	workloads := []struct {
		name string
		prog *ast.Program
		db   *database.DB
	}{
		{"chain60", tc, gen.ChainGraph(60)},
		{"random40x120", tc, gen.RandomGraph(rng, 40, 120)},
		{"grid10x10", tc, gen.GridGraph(10, 10)},
		{"star3x100", starProg, starDB},
	}
	for _, w := range workloads {
		for _, mode := range []struct {
			name string
			off  bool
		}{{"planned", false}, {"fixed", true}} {
			b.Run(w.name+"/"+mode.name, func(b *testing.B) {
				var stats eval.Stats
				for i := 0; i < b.N; i++ {
					_, s, err := eval.Eval(w.prog, w.db, eval.Options{Workers: 1, NoPlanner: mode.off})
					if err != nil {
						b.Fatal(err)
					}
					stats = s
				}
				b.ReportMetric(float64(stats.Derived), "derived")
				if total := stats.PlanCacheHits + stats.PlanCacheMisses; total > 0 {
					b.ReportMetric(float64(stats.PlanCacheHits)/float64(total), "cache-hit-rate")
				}
			})
		}
	}
}
