// Durable-storage benchmark families (PR 9). Run with
//
//	go test -run=NONE -bench=DurableEval .
//
// Two questions, one family each. "update" prices the WAL: the same
// retract/insert delta pairs through a durable handle (every update
// encoded, appended, fsynced) and an in-memory one — the ns/op gap is
// the cost of crash safety per update, dominated by the fsync.
// "recover" prices startup: attaching to a checkpointed store (decode
// the snapshot, wire the maintainer, no fixpoint) vs replaying a pure
// WAL store batch by batch vs the from-scratch fixpoint an engine with
// no persistence pays. Pipe the output through cmd/benchjson to
// produce the BENCH_PR9.json trajectory file.
package datalogeq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"

	_ "datalogeq/internal/ivm" // registers the maintainer behind eval.Maintain
)

// durableFromDB opens a durable handle in a fresh directory and seeds
// it with db's facts as one committed batch.
func durableFromDB(b *testing.B, prog *ast.Program, db *database.DB, snapBytes int64) (*eval.Handle, string) {
	b.Helper()
	dir := b.TempDir()
	d, err := database.Open(dir, database.OpenOptions{SnapshotBytes: snapBytes})
	if err != nil {
		b.Fatal(err)
	}
	h, _, err := eval.MaintainDurable(prog, d, eval.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := h.Insert(allAtoms(db)); err != nil {
		b.Fatal(err)
	}
	return h, dir
}

// allAtoms renders db as ground atoms in sorted predicate order.
func allAtoms(db *database.DB) []ast.Atom {
	var atoms []ast.Atom
	var row database.Row
	for _, pred := range db.Preds() {
		rel := db.Lookup(pred)
		for i := 0; i < rel.Len(); i++ {
			row = rel.AppendRowAt(row[:0], i)
			args := make([]ast.Term, len(row))
			for j, id := range row {
				args[j] = ast.C(database.Symbol(id))
			}
			atoms = append(atoms, ast.Atom{Pred: pred, Args: args})
		}
	}
	return atoms
}

func BenchmarkDurableEval(b *testing.B) {
	tc := parser.MustProgram(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	rng := rand.New(rand.NewSource(11))
	families := []struct {
		name string
		db   *database.DB
	}{
		{"chain60", gen.ChainGraph(60)},
		{"random40x120", gen.RandomGraph(rng, 40, 120)},
	}

	// Update cost: one retract+insert delta pair per iteration, so the
	// maintained state is identical at every iteration boundary and the
	// two lanes time exactly the same logical work — the durable lane
	// just commits (and fsyncs) each half.
	for _, f := range families {
		for _, delta := range []int{1, 10} {
			stream := gen.UpdateStream(rand.New(rand.NewSource(int64(delta))), f.db, "e", 64, delta)
			prefix := fmt.Sprintf("%s/delta%d/update/", f.name, delta)

			b.Run(prefix+"wal", func(b *testing.B) {
				h, _ := durableFromDB(b, tc, f.db, -1)
				defer h.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					batch := stream[i%len(stream)]
					if _, err := h.Retract(batch); err != nil {
						b.Fatal(err)
					}
					if _, err := h.Insert(batch); err != nil {
						b.Fatal(err)
					}
				}
			})

			b.Run(prefix+"memory", func(b *testing.B) {
				h, _, err := eval.Maintain(tc, f.db, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					batch := stream[i%len(stream)]
					if _, err := h.Retract(batch); err != nil {
						b.Fatal(err)
					}
					if _, err := h.Insert(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Recovery cost: reattach to the same store directory b.N times.
	// "snapshot" holds the whole state in a checkpoint (attach = decode
	// + wire), "replay" holds it as 64 WAL batches (attach = decode +
	// replay through the maintenance paths), "scratch" is the
	// no-persistence baseline re-fixpoint.
	for _, f := range families {
		stream := gen.UpdateStream(rand.New(rand.NewSource(7)), f.db, "e", 64, 1)

		snapDir := func(checkpoint bool) string {
			h, dir := durableFromDB(b, tc, f.db, -1)
			for _, batch := range stream {
				if _, err := h.Retract(batch); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Insert(batch); err != nil {
					b.Fatal(err)
				}
			}
			if checkpoint {
				if err := h.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
			return dir
		}

		for _, mode := range []struct {
			name       string
			checkpoint bool
		}{{"snapshot", true}, {"replay", false}} {
			b.Run(f.name+"/recover/"+mode.name, func(b *testing.B) {
				dir := snapDir(mode.checkpoint)
				b.ResetTimer()
				var seq uint64
				for i := 0; i < b.N; i++ {
					d, err := database.Open(dir, database.OpenOptions{SnapshotBytes: -1})
					if err != nil {
						b.Fatal(err)
					}
					h, _, err := eval.MaintainDurable(tc, d, eval.Options{})
					if err != nil {
						b.Fatal(err)
					}
					seq = h.Seq()
					if err := h.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(seq), "batches")
			})
		}

		b.Run(f.name+"/recover/scratch", func(b *testing.B) {
			var stats eval.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := eval.Eval(tc, f.db, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Derived), "derived")
		})
	}
}
