// Command experiments regenerates every experiment of EXPERIMENTS.md in
// one run and prints the report: example verdicts, tree reproductions,
// automata-size sweeps, unfolding-blowup tables, lower-bound encoding
// sizes, and evaluation-substrate comparisons. Wall-clock numbers vary
// by machine; the shapes are the claims.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"datalogeq/internal/core"
	"datalogeq/internal/eval"
	"datalogeq/internal/expansion"
	"datalogeq/internal/gen"
	"datalogeq/internal/nonrec"
	"datalogeq/internal/tm"
)

func main() {
	e1()
	e2()
	e3()
	e4()
	e5e6()
	e7()
	e8()
	e9()
	e10()
}

func section(id, title string) {
	fmt.Printf("\n══ %s — %s ══\n", id, title)
}

func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func e1() {
	section("E1", "Example 1.1: equivalence to nonrecursive rewritings")
	res, err := core.EquivalentToNonrecursive(gen.Example11Trendy(), "buys", gen.Example11TrendyNR(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Π₁ (trendy): equivalent = %v\n", res.Equivalent)
	res, err = core.EquivalentToNonrecursive(gen.Example11Knows(), "buys", gen.Example11KnowsNR(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Π₂ (knows):  equivalent = %v (%s)\n", res.Equivalent, res.Failure)
	if res.Witness != nil {
		fmt.Printf("  witness expansion: %s\n", res.Witness.Query)
	}
}

func e2() {
	section("E2", "Figures 1–2: unfolding expansion trees for transitive closure")
	trees := expansion.Unfoldings(gen.TransitiveClosure(), "p", 3, 0)
	for _, tr := range trees {
		if tr.Depth() == 3 {
			fmt.Print(tr)
			fmt.Printf("expansion: %s\n", tr.Query())
		}
	}
	n := len(expansion.ProofTrees(gen.TransitiveClosure(), "p", 2, 0))
	fmt.Printf("proof trees of height <= 2 over var(Π): %d (= 36·7)\n", n)
}

func e3() {
	section("E3", "Theorem 5.12: containment in paths <= k (automata sizes)")
	fmt.Printf("%3s %9s %13s %13s %10s\n", "k", "letters", "ptree-states", "theta-states", "time")
	for k := 1; k <= 6; k++ {
		var res core.Result
		var err error
		d := timed(func() {
			res, err = core.ContainsUCQ(gen.TransitiveClosure(), "p", gen.TCPathsUCQ(k), core.Options{})
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d %9d %13d %13d %10s  contained=%v witness-height=%d\n",
			k, res.Stats.Letters, res.Stats.PtreeStates, res.Stats.ThetaStates,
			d.Round(time.Millisecond), res.Contained, res.Witness.Tree.Depth())
	}
}

func e4() {
	section("E4", "linear programs: tree vs word procedure")
	q := gen.TCPathsUCQ(3)
	var tRes, wRes core.Result
	var err error
	dt := timed(func() { tRes, err = core.ContainsUCQ(gen.TransitiveClosure(), "p", q, core.Options{}) })
	if err != nil {
		log.Fatal(err)
	}
	dw := timed(func() { wRes, err = core.ContainsUCQLinear(gen.TransitiveClosure(), "p", q, core.Options{}) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: contained=%v in %s; word: contained=%v in %s (verdicts agree: %v)\n",
		tRes.Contained, dt.Round(time.Millisecond), wRes.Contained, dw.Round(time.Millisecond),
		tRes.Contained == wRes.Contained)
}

func e5e6() {
	section("E5/E6", "§6 unfolding blowup (Examples 6.1, 6.2, 6.3, 6.6)")
	fmt.Printf("%-8s %3s %9s %12s %10s\n", "family", "n", "disjuncts", "totalAtoms", "maxAtoms")
	for n := 1; n <= 5; n++ {
		s, err := nonrec.UnfoldStats(gen.DistProgram(n), gen.DistGoal(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d %9d %12d %10d\n", "dist", n, s.Disjuncts, s.TotalAtoms, s.MaxAtoms)
	}
	for n := 1; n <= 3; n++ {
		s, err := nonrec.UnfoldStats(gen.DistLeProgram(n), fmt.Sprintf("distle%d", n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d %9d %12d %10d\n", "distle", n, s.Disjuncts, s.TotalAtoms, s.MaxAtoms)
	}
	for n := 1; n <= 3; n++ {
		s, err := nonrec.UnfoldStats(gen.EqualProgram(n), fmt.Sprintf("equal%d", n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d %9d %12d %10d\n", "equal", n, s.Disjuncts, s.TotalAtoms, s.MaxAtoms)
	}
	for n := 2; n <= 8; n += 2 {
		s, err := nonrec.UnfoldStats(gen.WordProgram(n), fmt.Sprintf("word%d", n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d %9d %12d %10d\n", "word", n, s.Disjuncts, s.TotalAtoms, s.MaxAtoms)
	}
}

func lbMachine() *tm.Machine {
	return &tm.Machine{
		States:      []string{"s0", "s1", "qa"},
		TapeSymbols: []string{"_", "1"},
		Blank:       "_",
		Start:       "s0",
		Accept:      []string{"qa"},
		Transitions: []tm.Transition{
			{State: "s0", Read: "_", Write: "1", Move: tm.Right, NewState: "s1"},
			{State: "s1", Read: "_", Write: "_", Move: tm.Stay, NewState: "qa"},
		},
	}
}

func e7() {
	section("E7", "lower-bound encodings (§5.3 linear, §6 doubly-exponential)")
	m := lbMachine()
	fmt.Printf("%3s %12s %12s %12s %12s\n", "n", "§5.3 rules", "§5.3 qrys", "§6 Π rules", "§6 Π′ rules")
	for n := 1; n <= 4; n++ {
		e53, err := tm.Encode53(m, n)
		if err != nil {
			log.Fatal(err)
		}
		e6enc, err := tm.Encode6(m, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d %12d %12d %12d %12d\n",
			n, e53.Stats().Rules, e53.Stats().ErrorQueries, e6enc.Stats().Rules, e6enc.Stats().ErrorQueries)
	}
	// Semantic separation at n = 1.
	e53, _ := tm.Encode53(m, 1)
	run, _ := m.AcceptingRun(2)
	db, err := e53.ComputationDB(run)
	if err != nil {
		log.Fatal(err)
	}
	rel, _, err := eval.Goal(e53.Program, db, tm.Goal, eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	caught, err := e53.Errors.Holds(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepting computation DB: Π derives C = %v, Θ fires = %v  (Π ⊄ Θ as M accepts)\n",
		rel.Len() > 0, caught)
}

func e8() {
	section("E8", "converse direction: path-k ⊆ TC via canonical databases")
	for k := 2; k <= 16; k *= 2 {
		var ok bool
		var err error
		d := timed(func() { ok, err = core.CQContainedInProgram(gen.TCPathCQ(k), gen.TransitiveClosure(), "p") })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%2d contained=%v in %s\n", k, ok, d.Round(time.Microsecond))
	}
}

func e9() {
	section("E9", "evaluation substrate: semi-naive vs naive")
	rng := rand.New(rand.NewSource(1))
	chain := gen.ChainGraph(60)
	random := gen.RandomGraph(rng, 40, 120)
	for _, naive := range []bool{false, true} {
		d := timed(func() {
			if _, _, err := eval.Eval(gen.TransitiveClosure(), chain, eval.Options{Naive: naive}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-14s naive=%-5v %s\n", "chain-60", naive, d.Round(time.Millisecond))
	}
	for _, naive := range []bool{false, true} {
		d := timed(func() {
			if _, _, err := eval.Eval(gen.TransitiveClosure(), random, eval.Options{Naive: naive}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-14s naive=%-5v %s\n", "random-40x120", naive, d.Round(time.Millisecond))
	}
}

func e10() {
	section("E10", "Theorem 6.5 end-to-end + bounded rewriting")
	res, err := core.EquivalentToNonrecursive(gen.Example11Trendy(), "buys", gen.Example11TrendyNR(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trendy ≡ NR: %v (letters %d, ptree states %d, theta states %d, disjuncts %d)\n",
		res.Equivalent, res.Stats.Letters, res.Stats.PtreeStates, res.Stats.ThetaStates, res.UnfoldedDisjuncts)
	u, k, ok, err := core.BoundedRewriting(gen.Example11Trendy(), "buys", 4, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded-rewriting search: bounded=%v at height %d with %d disjuncts\n", ok, k, u.Size())
	_, _, ok, err = core.BoundedRewriting(gen.TransitiveClosure(), "p", 3, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transitive closure bounded within height 3: %v\n", ok)
}
