// Command lowerbound generates the paper's lower-bound reduction
// instances (§5.3 and §6) for a built-in demonstration Turing machine
// and reports their sizes, or emits the generated programs.
//
// Usage:
//
//	lowerbound table -max-n 6              # size scaling of both encodings
//	lowerbound emit -kind 53 -n 1          # print Π and Θ of the §5.3 encoding
//	lowerbound emit -kind 6 -n 1           # print Π and Π′ of the §6 encoding
//	lowerbound demo                        # end-to-end separation demo
package main

import (
	"flag"
	"fmt"
	"os"

	"datalogeq/internal/eval"
	"datalogeq/internal/tm"
)

// demoMachine accepts the empty tape: write a one, step right, accept.
func demoMachine() *tm.Machine {
	return &tm.Machine{
		States:      []string{"s0", "s1", "qa"},
		TapeSymbols: []string{"_", "1"},
		Blank:       "_",
		Start:       "s0",
		Accept:      []string{"qa"},
		Transitions: []tm.Transition{
			{State: "s0", Read: "_", Write: "1", Move: tm.Right, NewState: "s1"},
			{State: "s1", Read: "_", Write: "_", Move: tm.Stay, NewState: "qa"},
		},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "table":
		err = cmdTable(os.Args[2:])
	case "emit":
		err = cmdEmit(os.Args[2:])
	case "demo":
		err = cmdDemo()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lowerbound <table|emit|demo> [flags]
  table -max-n N
  emit  -kind 53|6 -n N
  demo`)
	os.Exit(2)
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	maxN := fs.Int("max-n", 6, "largest address width")
	fs.Parse(args)
	m := demoMachine()
	fmt.Println("== §5.3 encoding (linear case): program and error-UCQ sizes vs n ==")
	fmt.Printf("%4s %8s %10s %10s %12s %10s\n", "n", "rules", "ruleAtoms", "queries", "queryAtoms", "windows")
	for n := 1; n <= *maxN; n++ {
		e, err := tm.Encode53(m, n)
		if err != nil {
			return err
		}
		s := e.Stats()
		fmt.Printf("%4d %8d %10d %10d %12d %10d\n", n, s.Rules, s.RuleAtoms, s.ErrorQueries, s.ErrorAtoms, s.WindowSize)
	}
	fmt.Println()
	fmt.Println("== §6 encoding: recursive Π (fixed) and nonrecursive filter Π′ vs n ==")
	fmt.Printf("%4s %8s %10s %12s %14s\n", "n", "ΠRules", "ΠAtoms", "Π′Rules", "Π′Atoms")
	for n := 1; n <= *maxN; n++ {
		e, err := tm.Encode6(m, n)
		if err != nil {
			return err
		}
		s := e.Stats()
		fmt.Printf("%4d %8d %10d %12d %14d\n", n, s.Rules, s.RuleAtoms, s.ErrorQueries, s.ErrorAtoms)
	}
	return nil
}

func cmdEmit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	kind := fs.String("kind", "53", "encoding kind: 53 or 6")
	n := fs.Int("n", 1, "address width")
	fs.Parse(args)
	m := demoMachine()
	switch *kind {
	case "53":
		e, err := tm.Encode53(m, *n)
		if err != nil {
			return err
		}
		fmt.Println("% program Pi:")
		fmt.Print(e.Program)
		fmt.Println("% union of error queries Theta:")
		fmt.Print(e.Errors)
	case "6":
		e, err := tm.Encode6(m, *n)
		if err != nil {
			return err
		}
		fmt.Println("% recursive program Pi:")
		fmt.Print(e.Program)
		fmt.Println("% nonrecursive filter Pi':")
		fmt.Print(e.Filter)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return nil
}

func cmdDemo() error {
	m := demoMachine()
	fmt.Println("Machine M writes a one and accepts the empty tape.")
	fmt.Println()
	for n := 1; n <= 2; n++ {
		e, err := tm.Encode53(m, n)
		if err != nil {
			return err
		}
		run, ok := m.AcceptingRun(1 << uint(n))
		if !ok {
			return fmt.Errorf("machine does not accept in space %d", 1<<uint(n))
		}
		db, err := e.ComputationDB(run)
		if err != nil {
			return err
		}
		rel, _, err := eval.Goal(e.Program, db, tm.Goal, eval.Options{})
		if err != nil {
			return err
		}
		errOK, err := e.Errors.Holds(db, nil)
		if err != nil {
			return err
		}
		fmt.Printf("§5.3, n=%d: computation of %d configurations, database of %d facts\n",
			n, len(run), db.FactCount())
		fmt.Printf("  Π derives C: %v; some error query fires: %v\n", rel.Len() > 0, errOK)
		if rel.Len() > 0 && !errOK {
			fmt.Println("  => the computation database separates Π from Θ: Π ⊄ Θ, as M accepts.")
		}
		fmt.Println()
	}
	return nil
}
