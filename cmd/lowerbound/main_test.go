package main

import "testing"

func TestDemoMachineAccepts(t *testing.T) {
	m := demoMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.Accepts(2) {
		t.Error("demo machine should accept in space 2")
	}
}

func TestCmdTable(t *testing.T) {
	if err := cmdTable([]string{"-max-n", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEmit(t *testing.T) {
	if err := cmdEmit([]string{"-kind", "53", "-n", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEmit([]string{"-kind", "6", "-n", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEmit([]string{"-kind", "zz", "-n", "1"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestCmdDemo(t *testing.T) {
	if err := cmdDemo(); err != nil {
		t.Fatal(err)
	}
}
