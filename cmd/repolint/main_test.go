package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLinter(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module example.com/lintme\n\ngo 1.22\n",
		// An ordered package: maprange is checked, and so is panic.
		"internal/core/a.go": `package core

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Allowed(m map[string]int) int {
	n := 0
	for range m { //repolint:allow maprange — counting is order-insensitive.
		n++
	}
	return n
}

func Bad(i int) int {
	if i < 0 {
		panic("negative")
	}
	return i
}

func Must(i int) int {
	if i < 0 {
		//repolint:allow panic — fixture: documented to panic.
		panic("negative")
	}
	return i
}
`,
		// Library code outside the ordered packages: panic is still
		// checked, maprange is not.
		"internal/other/b.go": `package other

func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func Boom() { panic("boom") }
`,
		// A command: maprange and panic do not apply, but the goroutine
		// check does. The module is on go 1.22, so the loop-variable
		// capture is NOT additionally flagged (per-iteration variables).
		"cmd/tool/main.go": `package main

func main() {
	m := map[string]int{"a": 1}
	for range m {
		panic("fine here")
	}
	for k := range m {
		go func() { _ = k }()
	}
}
`,
		// Test files are skipped entirely.
		"internal/core/a_test.go": `package core

import "testing"

func TestPanic(t *testing.T) { defer func() { recover() }(); panic("ok") }
`,
	})

	dirs, err := expandDirs(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(root, "example.com/lintme")
	for _, dir := range dirs {
		if err := l.lintDir(dir); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]string{
		"internal/core/a.go:5":   "range over map",
		"internal/core/a.go:21":  "panic in library code",
		"internal/other/b.go:11": "panic in library code",
		"cmd/tool/main.go:9":     "naked go statement",
	}
	for _, f := range l.findings {
		matched := false
		for prefix, msg := range want {
			if strings.HasPrefix(f, prefix+":") && strings.Contains(f, msg) {
				delete(want, prefix)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for prefix, msg := range want {
		t.Errorf("missing finding %q at %s", msg, prefix)
	}
}

// TestLinterConcurrency exercises the concurrency pass: naked go
// statements (with internal/par exempt), mutex copies, and — because
// this fixture module is on go 1.21 — loop-variable capture in
// goroutines.
func TestLinterConcurrency(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module example.com/concme\n\ngo 1.21\n",
		// The executor package itself may spawn raw goroutines.
		"internal/par/par.go": `package par

func Go(fn func()) { go fn() }
`,
		"internal/work/w.go": `package work

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func Spawn(fn func()) {
	go fn()
}

func SpawnAllowed(fn func()) {
	go fn() //repolint:allow goroutine — fixture: managed elsewhere.
}

func Dup(g *guarded) guarded {
	h := *g
	return h
}

func take(g guarded) int { return g.n }

func Use(g *guarded) int { return take(*g) }

func Snapshot(g *guarded) guarded {
	return *g //repolint:allow mutexcopy — fixture: caller owns g exclusively.
}

func Loop(items []int, fn func(int)) {
	for _, it := range items {
		go func() { //repolint:allow goroutine — fixture: exercising loopcapture.
			fn(it)
		}()
	}
}
`,
	})

	dirs, err := expandDirs(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(root, "example.com/concme")
	if !l.preGo122 {
		t.Fatal("go 1.21 module not detected as pre-1.22")
	}
	for _, dir := range dirs {
		if err := l.lintDir(dir); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]string{
		"internal/work/w.go:11": "naked go statement",
		"internal/work/w.go:19": "sync.Mutex",
		"internal/work/w.go:20": "sync.Mutex",
		"internal/work/w.go:25": "sync.Mutex",
		"internal/work/w.go:33": "captures a loop variable",
	}
	for _, f := range l.findings {
		matched := false
		for prefix, msg := range want {
			if strings.HasPrefix(f, prefix+":") && strings.Contains(f, msg) {
				delete(want, prefix)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for prefix, msg := range want {
		t.Errorf("missing finding %q at %s", msg, prefix)
	}
}

// TestLinterGuardCharge exercises the guardcharge pass: budget
// accounting inside worker closures passed to internal/par.
func TestLinterGuardCharge(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module example.com/guardme\n\ngo 1.22\n",
		"internal/par/par.go": `package par

func ForEach(workers, n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`,
		"internal/guard/guard.go": `package guard

type Budget struct{ MaxSteps int64 }

type Meter struct{ steps int64 }

func (b Budget) Meter() *Meter { return &Meter{} }

func (m *Meter) Charge(phase string, n int64) error { return nil }

func (m *Meter) CheckWall(phase string) error { return nil }
`,
		"internal/work/w.go": `package work

import (
	"example.com/guardme/internal/guard"
	"example.com/guardme/internal/par"
)

func use(m *guard.Meter) {}

func SharedCharge(b guard.Budget, n int) {
	m := b.Meter()
	par.ForEach(1, n, func(i int) {
		_ = m.Charge("w", 1)
	})
}

func InnerMeter(b guard.Budget, n int) {
	par.ForEach(1, n, func(i int) {
		m := b.Meter()

		use(m)
	})
}

func SingleThreaded(b guard.Budget, n int) {
	m := b.Meter()
	par.ForEach(1, n, func(i int) {
		_ = i
	})
	_ = m.Charge("w", 1)
}

func PerIndex(b guard.Budget, n int) {
	meters := make([]*guard.Meter, n)
	par.ForEach(1, n, func(i int) {
		meters[i] = b.Meter() //repolint:allow guardcharge — fixture: one meter per index.
	})
}
`,
	})

	dirs, err := expandDirs(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(root, "example.com/guardme")
	for _, dir := range dirs {
		if err := l.lintDir(dir); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]string{
		"internal/work/w.go:13": "charges a guard.Meter",
		"internal/work/w.go:19": "creates a guard.Meter",
		"internal/work/w.go:21": "passes a *guard.Meter",
	}
	for _, f := range l.findings {
		matched := false
		for prefix, msg := range want {
			if strings.HasPrefix(f, prefix+":") && strings.Contains(f, msg) {
				delete(want, prefix)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for prefix, msg := range want {
		t.Errorf("missing finding %q at %s", msg, prefix)
	}
}

// TestLinterSelfClean runs the linter over this repository itself: CI
// requires a clean run, so the test pins that state.
func TestLinterSelfClean(t *testing.T) {
	root, module, err := findModule()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := expandDirs(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(root, module)
	for _, dir := range dirs {
		if err := l.lintDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range l.findings {
		t.Errorf("repolint finding: %s", f)
	}
}
