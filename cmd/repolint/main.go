// Command repolint is this repository's custom static analyzer for its
// own Go source, built on the standard library only (go/parser,
// go/types). It enforces repo invariants that gofmt and go vet do not
// cover:
//
//   - maprange: in the decision-procedure packages (treeauto, wordauto,
//     core, ucq) iterating a map with range is flagged, because map
//     order is random and those packages construct automata, witnesses,
//     and unions whose determinism the tests and golden files rely on.
//     Iterate a sorted key slice instead, or annotate the line (or the
//     line above) with "//repolint:allow maprange — <why order cannot
//     leak into output>".
//
//   - panic: calling panic in non-test library code (anything under
//     internal/) is flagged, because the north-star is serving untrusted
//     programs: user input must surface as errors with positions, not
//     crashes. True invariant violations stay panics, annotated with
//     "//repolint:allow panic — <why this is unreachable from input>".
//
//   - goroutine: a naked go statement anywhere outside internal/par is
//     flagged. All concurrency in this repo flows through the par
//     executor so worker counts, stop flags, and determinism arguments
//     live in one audited place. Annotate deliberate exceptions with
//     "//repolint:allow goroutine — <why this cannot go through par>".
//
//   - mutexcopy: copying a value whose type (recursively) contains a
//     sync.Mutex or sync.RWMutex — in an assignment, var initializer,
//     call argument, or return — is flagged; a copied lock guards
//     nothing. Pass a pointer instead.
//
//   - loopcapture: a go statement whose function literal captures a
//     loop variable is flagged when the module's go directive predates
//     1.22 (per-iteration loop variables); before then every iteration
//     shares one variable and the goroutines race on it.
//
//   - guardcharge: budget accounting inside a worker closure passed to
//     internal/par — creating a meter (guard.Budget.Meter), charging
//     one (Meter.Charge, Meter.CheckWall), or handing a *guard.Meter to
//     a callee — is flagged. Charges racing across workers make budget
//     trip points depend on the worker count, breaking the engine's
//     bit-determinism contract; charge at a single-threaded point, or
//     annotate "//repolint:allow guardcharge — <why trips stay
//     deterministic>" (e.g. a dedicated meter per task index).
//
// Usage: go run ./cmd/repolint ./...
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// orderedPkgs are the decision-procedure packages where map iteration
// order can leak into constructed automata and rendered output.
var orderedPkgs = map[string]bool{
	"treeauto": true,
	"wordauto": true,
	"core":     true,
	"ucq":      true,
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	dirs, err := expandDirs(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	l := newLinter(root, module)
	for _, dir := range dirs {
		if err := l.lintDir(dir); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	}
	sort.Slice(l.findings, func(i, j int) bool { return l.findings[i] < l.findings[j] })
	for _, f := range l.findings {
		fmt.Println(f)
	}
	if len(l.findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(l.findings))
		os.Exit(1)
	}
}

// findModule locates go.mod upward from the working directory and
// returns the module root and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandDirs resolves "./..."-style arguments into the set of
// directories containing Go files.
func expandDirs(root string, args []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, a := range args {
		if rest, ok := strings.CutSuffix(a, "..."); ok {
			base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(root, filepath.FromSlash(a)))
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// linter type-checks packages (memoized) and accumulates findings.
type linter struct {
	root     string
	module   string
	preGo122 bool // module go directive < 1.22: loop vars are shared
	fset     *token.FileSet
	stdlib   types.ImporterFrom
	pkgs     map[string]*types.Package // by import path
	infos    map[string]*pkgInfo       // by directory
	findings []string
}

// pkgInfo is one parsed-and-checked package directory.
type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLinter(root, module string) *linter {
	fset := token.NewFileSet()
	major, minor := moduleGoVersion(root)
	return &linter{
		root:     root,
		module:   module,
		preGo122: major == 1 && minor < 22,
		fset:     fset,
		stdlib:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:     make(map[string]*types.Package),
		infos:    make(map[string]*pkgInfo),
	}
}

// moduleGoVersion parses the "go" directive from the module's go.mod.
// Returns zeros if absent: loopcapture then stays off rather than
// guessing.
func moduleGoVersion(root string) (major, minor int) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "go "); ok {
			fmt.Sscanf(strings.TrimSpace(rest), "%d.%d", &major, &minor)
			return major, minor
		}
	}
	return 0, 0
}

// Import resolves module-internal import paths by type-checking the
// package from source; everything else (the standard library) goes to
// the source importer. This keeps the tool free of external deps.
func (l *linter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

func (l *linter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		info, err := l.check(filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = info.pkg
		return info.pkg, nil
	}
	pkg, err := l.stdlib.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses and type-checks the non-test Go files of one directory.
func (l *linter) check(dir string) (*pkgInfo, error) {
	if info, ok := l.infos[dir]; ok {
		return info, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l}
	rel, _ := filepath.Rel(l.root, dir)
	importPath := l.module
	if rel != "." {
		importPath = l.module + "/" + filepath.ToSlash(rel)
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.infos[dir] = pi
	return pi, nil
}

// lintDir runs all checks over one package directory.
func (l *linter) lintDir(dir string) error {
	pi, err := l.check(dir)
	if err != nil {
		return err
	}
	rel, _ := filepath.Rel(l.root, dir)
	rel = filepath.ToSlash(rel)
	inInternal := strings.HasPrefix(rel, "internal/")
	checkMapRange := orderedPkgs[filepath.Base(dir)] && inInternal
	// internal/par is the one place allowed to spawn raw goroutines: it
	// IS the executor everything else is told to use.
	checkGo := rel != "internal/par"
	for _, f := range pi.files {
		allowed := allowLines(l.fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !checkMapRange {
					return true
				}
				tv, ok := pi.info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := l.fset.Position(n.Pos())
				if suppressed(allowed["maprange"], pos.Line) {
					return true
				}
				l.report(pos, "range over map: iteration order is random and this package's output must be deterministic; iterate sorted keys or annotate //repolint:allow maprange")
			case *ast.GoStmt:
				if !checkGo {
					return true
				}
				pos := l.fset.Position(n.Pos())
				if suppressed(allowed["goroutine"], pos.Line) {
					return true
				}
				l.report(pos, "naked go statement: spawn goroutines through internal/par so worker counts and stop flags stay centralized, or annotate //repolint:allow goroutine")
			case *ast.CallExpr:
				for _, arg := range n.Args {
					l.checkMutexCopy(pi, allowed, arg)
				}
				if l.isParCall(pi, n) {
					for _, arg := range n.Args {
						if fl, ok := arg.(*ast.FuncLit); ok {
							l.checkGuardCharge(pi, allowed, fl)
						}
					}
				}
				if !inInternal {
					return true
				}
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Only the builtin, not a local function named panic.
				if _, isBuiltin := pi.info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				pos := l.fset.Position(n.Pos())
				if suppressed(allowed["panic"], pos.Line) {
					return true
				}
				l.report(pos, "panic in library code: untrusted input must surface as errors with positions; return an error or annotate //repolint:allow panic")
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					l.checkMutexCopy(pi, allowed, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					l.checkMutexCopy(pi, allowed, v)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					l.checkMutexCopy(pi, allowed, r)
				}
			}
			return true
		})
		if l.preGo122 {
			l.checkLoopCapture(pi, f, allowed)
		}
	}
	return nil
}

// checkMutexCopy flags e when it reads an existing value whose type
// recursively contains a sync.Mutex or sync.RWMutex: the enclosing
// assignment, call, or return copies the lock. Fresh values (composite
// literals, function-call results, &x) are not copies and pass.
func (l *linter) checkMutexCopy(pi *pkgInfo, allowed map[string]map[int]bool, e ast.Expr) {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := pi.info.Types[e]
	if !ok || tv.Type == nil || !containsMutex(tv.Type, nil) {
		return
	}
	pos := l.fset.Position(e.Pos())
	if suppressed(allowed["mutexcopy"], pos.Line) {
		return
	}
	l.report(pos, "copies a value containing a sync.Mutex: a copied lock guards nothing; pass a pointer or annotate //repolint:allow mutexcopy")
}

// isParCall reports whether the call's callee is a function of this
// module's internal/par package (the worker executor).
func (l *linter) isParCall(pi *pkgInfo, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pi.info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == l.module+"/internal/par"
}

// checkGuardCharge flags budget accounting lexically inside a worker
// closure handed to internal/par: meter creation, charge/wall checks,
// and *guard.Meter values passed on to callees. All of those run
// concurrently across workers, so a shared meter's trip point would
// depend on the worker count.
func (l *linter) checkGuardCharge(pi *pkgInfo, allowed map[string]map[int]bool, fl *ast.FuncLit) {
	flag := func(p token.Pos, what string) {
		pos := l.fset.Position(p)
		if suppressed(allowed["guardcharge"], pos.Line) {
			return
		}
		l.report(pos, what+" inside a par worker closure: concurrent budget accounting makes trip points worker-count-dependent; charge at a single-threaded point or annotate //repolint:allow guardcharge")
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if tv, ok := pi.info.Types[sel.X]; ok && tv.Type != nil {
				switch {
				case sel.Sel.Name == "Meter" && l.isGuardType(tv.Type, "Budget"):
					flag(call.Pos(), "creates a guard.Meter")
				case (sel.Sel.Name == "Charge" || sel.Sel.Name == "CheckWall") && l.isGuardType(tv.Type, "Meter"):
					flag(call.Pos(), "charges a guard.Meter")
				}
			}
		}
		for _, a := range call.Args {
			if tv, ok := pi.info.Types[a]; ok && tv.Type != nil && l.isGuardType(tv.Type, "Meter") {
				flag(a.Pos(), "passes a *guard.Meter to a callee")
			}
		}
		return true
	})
}

// isGuardType reports whether t (or its pointee) is the named type
// internal/guard.<name> of this module.
func (l *linter) isGuardType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == l.module+"/internal/guard" && obj.Name() == name
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// containsMutex reports whether t recursively contains a sync.Mutex or
// sync.RWMutex (through struct fields and array elements; pointers,
// slices, and maps share rather than copy, so they stop the search).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if name := obj.Name(); name == "Mutex" || name == "RWMutex" {
				return true
			}
		}
		return containsMutex(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsMutex(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(t.Elem(), seen)
	}
	return false
}

// checkLoopCapture flags go statements whose function literal reads a
// loop variable. Only meaningful for modules on go < 1.22, where every
// iteration shares one variable and the goroutines race on it.
func (l *linter) checkLoopCapture(pi *pkgInfo, f *ast.File, allowed map[string]map[int]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		loopVars := make(map[types.Object]bool)
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pi.info.Defs[id]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
			body = s.Body
		case *ast.ForStmt:
			if as, ok := s.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, e := range as.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pi.info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
			body = s.Body
		default:
			return true
		}
		if len(loopVars) == 0 {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			g, ok := m.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			captured := false
			ast.Inspect(fl.Body, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if obj := pi.info.Uses[id]; obj != nil && loopVars[obj] {
						captured = true
					}
				}
				return true
			})
			if !captured {
				return true
			}
			pos := l.fset.Position(g.Pos())
			if suppressed(allowed["loopcapture"], pos.Line) {
				return true
			}
			l.report(pos, "goroutine captures a loop variable: on go < 1.22 iterations share the variable and the goroutines race on it; pass it as an argument or annotate //repolint:allow loopcapture")
			return true
		})
		return true
	})
}

func (l *linter) report(pos token.Position, msg string) {
	rel, err := filepath.Rel(l.root, pos.Filename)
	if err != nil {
		rel = pos.Filename
	}
	l.findings = append(l.findings,
		fmt.Sprintf("%s:%d:%d: %s", filepath.ToSlash(rel), pos.Line, pos.Column, msg))
}

// suppressed reports whether an annotation covers the finding at the
// given line: on the line itself, on the line above, or on the line
// below (the first line of a multi-line statement's body).
func suppressed(lines map[int]bool, line int) bool {
	return lines[line] || lines[line-1] || lines[line+1]
}

// allowLines collects, per check name, the source lines carrying a
// "//repolint:allow <check>" annotation. An annotation suppresses
// findings on its own line, the line above, and the line below it.
func allowLines(fset *token.FileSet, f *ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), "repolint:allow ")
			if !ok {
				continue
			}
			check := rest
			if i := strings.IndexAny(rest, " \t—"); i >= 0 {
				check = rest[:i]
			}
			if out[check] == nil {
				out[check] = make(map[int]bool)
			}
			out[check][fset.Position(c.Pos()).Line] = true
		}
	}
	return out
}
