package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: datalogeq
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScalingEval/chain200         	      12	   3138159 ns/op	       200.0 derived	       201.0 rounds
BenchmarkScalingEval/chain200-4       	      20	   1038159 ns/op	       200.0 derived	       201.0 rounds
BenchmarkScalingUCQ-8                 	   15000	     76308 ns/op
PASS
ok  	datalogeq	0.191s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(report.Benchmarks); got != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", got)
	}
	b := report.Benchmarks[0]
	if b.Name != "ScalingEval/chain200" || b.Procs != 1 || b.Iterations != 12 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if b.NsPerOp != 3138159 || b.Metrics["derived"] != 200 || b.Metrics["rounds"] != 201 {
		t.Errorf("first benchmark values wrong: %+v", b)
	}
	if b := report.Benchmarks[1]; b.Procs != 4 || b.Name != "ScalingEval/chain200" {
		t.Errorf("-cpu suffix not split: %+v", b)
	}
	if b := report.Benchmarks[2]; b.Procs != 8 || b.Metrics != nil {
		t.Errorf("metric-free line parsed wrong: %+v", b)
	}
	if report.Context["goos"] != "linux" || !strings.Contains(report.Context["cpu"], "Xeon") {
		t.Errorf("context headers missing: %v", report.Context)
	}
	// Raw preserves every input line so benchstat can consume the
	// extracted text unchanged.
	if len(report.Raw) != strings.Count(sample, "\n") {
		t.Errorf("raw lines = %d", len(report.Raw))
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("input without benchmark lines accepted")
	}
}
