// Command benchjson converts `go test -bench` output into a JSON
// report so benchmark trajectories can be committed and diffed across
// PRs. The raw benchmark lines are preserved verbatim in the report, so
// extracting them (jq -r '.raw[]') yields text benchstat accepts; the
// parsed entries carry name, GOMAXPROCS (the -cpu suffix), ns/op, and
// every custom metric.
//
// Usage:
//
//	go test -run=NONE -bench=Scaling -cpu 1,4 . | go run ./cmd/benchjson -note "ci 4 vcpu" -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Report is the committed JSON document.
type Report struct {
	Note       string            `json:"note,omitempty"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Raw        []string          `json:"raw"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form provenance note recorded in the report")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	report.Note = *note

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` text: context headers (goos, goarch,
// pkg, cpu), benchmark result lines, and anything else (PASS, ok)
// preserved only in Raw.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		report.Raw = append(report.Raw, line)
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if rest, ok := strings.CutPrefix(line, key+": "); ok {
				report.Context[key] = strings.TrimSpace(rest)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", line, err)
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	return report, nil
}

// parseLine splits one result line:
//
//	BenchmarkScalingEval/chain200-4   12   3138159 ns/op   200.0 derived
//
// The trailing -N on the name is GOMAXPROCS (absent means 1), then the
// iteration count, then value/unit pairs.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	b := Benchmark{Procs: 1, Metrics: map[string]float64{}}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count: %w", err)
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			continue
		}
		b.Metrics[unit] = val
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, nil
}
