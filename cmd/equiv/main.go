// Command equiv decides containment and equivalence of recursive and
// nonrecursive Datalog programs — the decision procedures of Chaudhuri
// & Vardi (JCSS 1997).
//
// Usage:
//
//	equiv contain -program tc.dl -goal p -queries qs.dl [-linear]
//	equiv nonrec  -program rec.dl -nonrec nr.dl -goal p
//
// "contain" decides Π ⊆ Θ for a union of conjunctive queries given as
// Datalog rules with the goal predicate in their heads. "nonrec"
// decides full equivalence of a recursive and a nonrecursive program.
//
// The procedures are 2EXPTIME/3EXPTIME-complete, so every subcommand
// accepts resource budgets (-max-states, -max-steps, -max-facts,
// -max-canon, -timeout). A budget trip is graceful degradation, not
// failure: the run prints UNKNOWN plus the tripped limit and its
// progress snapshot, and exits 0.
//
// Exit status: 0 = contained/equivalent/unknown (budget exhausted),
// 1 = not contained/equivalent, 2 = error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"datalogeq/internal/ast"
	"datalogeq/internal/core"
	"datalogeq/internal/cq"
	"datalogeq/internal/guard"
	"datalogeq/internal/nonrec"
	"datalogeq/internal/parser"
	"datalogeq/internal/ucq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var (
		code int
		err  error
	)
	switch os.Args[1] {
	case "contain":
		code, err = cmdContain(os.Args[2:])
	case "nonrec":
		code, err = cmdNonrec(os.Args[2:])
	case "ucq":
		code, err = cmdUCQ(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: equiv <contain|nonrec|ucq> [flags]
  contain -program FILE -goal PRED -queries FILE [-linear] [budget flags]
  nonrec  -program FILE -nonrec FILE -goal PRED [budget flags]
  ucq     -left FILE -right FILE -goal PRED [budget flags]  (UCQ vs UCQ equivalence)
budget flags: -max-states N -max-steps N -max-facts N -max-canon N -timeout D
  a tripped budget prints UNKNOWN (exit 0) with the limit and progress`)
	os.Exit(2)
}

// budgetFlags registers the shared resource-budget flags on fs and
// returns a function assembling the guard.Budget after parsing.
func budgetFlags(fs *flag.FlagSet) func() guard.Budget {
	maxStates := fs.Int64("max-states", 0, "budget: automaton states per construction and antichain configurations (0 = unlimited)")
	maxSteps := fs.Int64("max-steps", 0, "budget: transition firings in the containment loops (0 = unlimited)")
	maxFacts := fs.Int64("max-facts", 0, "budget: facts derived on canonical databases (0 = unlimited)")
	maxCanon := fs.Int64("max-canon", 0, "budget: canonical-database facts frozen (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "budget: wall-clock limit for the whole check (0 = no limit)")
	return func() guard.Budget {
		return guard.Budget{
			MaxStates: *maxStates,
			MaxSteps:  *maxSteps,
			MaxFacts:  *maxFacts,
			MaxCanon:  *maxCanon,
			MaxWall:   *timeout,
		}
	}
}

// reportUnknown prints the graceful-degradation outcome: the verdict
// line, the tripped limit, and the progress snapshot at trip time.
func reportUnknown(le *guard.LimitError) {
	fmt.Println("UNKNOWN")
	fmt.Fprintf(os.Stderr, "%% budget exhausted: %v\n", le)
	fmt.Fprintf(os.Stderr, "%% progress at trip: %s\n", le.Usage)
}

func loadProgram(path string) (*ast.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.Program(string(src))
}

// loadUCQ reads a union of conjunctive queries written as Datalog rules
// whose heads share the goal predicate.
func loadUCQ(path, goal string) (ucq.UCQ, error) {
	prog, err := loadProgram(path)
	if err != nil {
		return ucq.UCQ{}, err
	}
	var ds []cq.CQ
	for _, r := range prog.Rules {
		if r.Head.Pred != goal {
			return ucq.UCQ{}, fmt.Errorf("query head %s does not match goal %q", r.Head, goal)
		}
		ds = append(ds, cq.CQ{Head: r.Head, Body: r.Body})
	}
	u := ucq.New(ds...)
	return u, u.Validate()
}

func cmdContain(args []string) (int, error) {
	fs := flag.NewFlagSet("contain", flag.ExitOnError)
	progPath := fs.String("program", "", "recursive program file")
	goal := fs.String("goal", "", "goal predicate")
	queriesPath := fs.String("queries", "", "union of conjunctive queries (as rules)")
	linear := fs.Bool("linear", false, "use the word-automaton procedure (path-linear programs)")
	workers := fs.Int("workers", 0, "worker goroutines for automata construction and containment (0 = all cores)")
	budget := budgetFlags(fs)
	fs.Parse(args)
	if *progPath == "" || *goal == "" || *queriesPath == "" {
		return 2, fmt.Errorf("contain needs -program, -goal, and -queries")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return 2, err
	}
	q, err := loadUCQ(*queriesPath, *goal)
	if err != nil {
		return 2, err
	}
	opts := core.Options{Workers: *workers, Budget: budget()}
	var res core.Result
	if *linear {
		if !prog.IsPathLinear() {
			inlined, err := nonrec.InlineNonrecursive(prog, *goal)
			if err != nil {
				return 2, err
			}
			prog = inlined
		}
		res, err = core.ContainsUCQLinear(prog, *goal, q, opts)
	} else {
		res, err = core.ContainsUCQ(prog, *goal, q, opts)
	}
	if err != nil {
		return 2, err
	}
	return report(res), nil
}

func report(res core.Result) int {
	fmt.Fprintf(os.Stderr, "%% alphabet %d letters, A^ptrees %d states, A^theta %d states\n",
		res.Stats.Letters, res.Stats.PtreeStates, res.Stats.ThetaStates)
	fmt.Fprintf(os.Stderr, "%% budget consumed (construction): %s\n", res.Stats.Budget)
	if res.Verdict == core.Unknown {
		reportUnknown(res.Limit)
		return 0
	}
	if res.Contained {
		fmt.Println("CONTAINED")
		return 0
	}
	fmt.Println("NOT CONTAINED")
	fmt.Println("% counterexample proof tree:")
	fmt.Print(res.Witness.Tree)
	fmt.Printf("%% counterexample expansion: %s\n", res.Witness.Query)
	db, head := res.Witness.Query.CanonicalDB()
	fmt.Println("% separating database:")
	fmt.Println(db)
	fmt.Printf("%% separating tuple: %v\n", head)
	return 1
}

// cmdUCQ decides equivalence of two unions of conjunctive queries via
// Sagiv-Yannakakis containment.
func cmdUCQ(args []string) (int, error) {
	fs := flag.NewFlagSet("ucq", flag.ExitOnError)
	leftPath := fs.String("left", "", "first UCQ file (rules)")
	rightPath := fs.String("right", "", "second UCQ file (rules)")
	goal := fs.String("goal", "", "goal predicate")
	workers := fs.Int("workers", 0, "worker goroutines for the per-disjunct checks (0 = all cores)")
	budget := budgetFlags(fs)
	fs.Parse(args)
	if *leftPath == "" || *rightPath == "" || *goal == "" {
		return 2, fmt.Errorf("ucq needs -left, -right, and -goal")
	}
	left, err := loadUCQ(*leftPath, *goal)
	if err != nil {
		return 2, err
	}
	right, err := loadUCQ(*rightPath, *goal)
	if err != nil {
		return 2, err
	}
	opts := ucq.Options{Workers: *workers, Budget: budget().Started()}
	lr, err := ucq.ContainedInUCQOpt(left, right, opts)
	if err == nil {
		var rl bool
		rl, err = ucq.ContainedInUCQOpt(right, left, opts)
		if err == nil {
			fmt.Fprintf(os.Stderr, "%% left ⊆ right: %v; right ⊆ left: %v\n", lr, rl)
			if lr && rl {
				fmt.Println("EQUIVALENT")
				min := ucq.Minimize(left)
				fmt.Printf("%% canonical minimal form (%d disjuncts):\n", min.Size())
				fmt.Print(min)
				return 0, nil
			}
			fmt.Println("NOT EQUIVALENT")
			return 1, nil
		}
	}
	var le *guard.LimitError
	if errors.As(err, &le) {
		reportUnknown(le)
		return 0, nil
	}
	return 2, err
}

func cmdNonrec(args []string) (int, error) {
	fs := flag.NewFlagSet("nonrec", flag.ExitOnError)
	progPath := fs.String("program", "", "recursive program file")
	nrPath := fs.String("nonrec", "", "nonrecursive program file")
	goal := fs.String("goal", "", "goal predicate")
	workers := fs.Int("workers", 0, "worker goroutines for automata construction and containment (0 = all cores)")
	budget := budgetFlags(fs)
	fs.Parse(args)
	if *progPath == "" || *nrPath == "" || *goal == "" {
		return 2, fmt.Errorf("nonrec needs -program, -nonrec, and -goal")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return 2, err
	}
	nr, err := loadProgram(*nrPath)
	if err != nil {
		return 2, err
	}
	opts := core.Options{Workers: *workers, Budget: budget()}
	res, err := core.EquivalentToNonrecursive(prog, *goal, nr, opts)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(os.Stderr, "%% nonrecursive program unfolds to %d disjuncts\n", res.UnfoldedDisjuncts)
	fmt.Fprintf(os.Stderr, "%% alphabet %d letters, A^ptrees %d states, A^theta %d states\n",
		res.Stats.Letters, res.Stats.PtreeStates, res.Stats.ThetaStates)
	fmt.Fprintf(os.Stderr, "%% budget consumed (construction): %s\n", res.Stats.Budget)
	if res.Verdict == core.Unknown {
		reportUnknown(res.Limit)
		return 0, nil
	}
	if res.Equivalent {
		fmt.Println("EQUIVALENT")
		return 0, nil
	}
	fmt.Printf("NOT EQUIVALENT (%s)\n", res.Failure)
	if res.Witness != nil {
		fmt.Println("% counterexample proof tree:")
		fmt.Print(res.Witness.Tree)
		fmt.Printf("%% counterexample expansion: %s\n", res.Witness.Query)
	}
	if res.FailingCQ != nil {
		fmt.Printf("%% nonrecursive disjunct not contained in the recursive program: %s\n", res.FailingCQ)
	}
	fmt.Println("% separating database:")
	fmt.Println(res.SeparatingDB)
	fmt.Printf("%% separating tuple: %v\n", res.SeparatingTuple)
	return 1, nil
}
