// Command equiv decides containment and equivalence of recursive and
// nonrecursive Datalog programs — the decision procedures of Chaudhuri
// & Vardi (JCSS 1997).
//
// Usage:
//
//	equiv contain -program tc.dl -goal p -queries qs.dl [-linear]
//	equiv nonrec  -program rec.dl -nonrec nr.dl -goal p
//
// "contain" decides Π ⊆ Θ for a union of conjunctive queries given as
// Datalog rules with the goal predicate in their heads. "nonrec"
// decides full equivalence of a recursive and a nonrecursive program.
// Exit status: 0 = contained/equivalent, 1 = not, 2 = error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"datalogeq/internal/ast"
	"datalogeq/internal/core"
	"datalogeq/internal/cq"
	"datalogeq/internal/nonrec"
	"datalogeq/internal/parser"
	"datalogeq/internal/ucq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var (
		verdict bool
		err     error
	)
	switch os.Args[1] {
	case "contain":
		verdict, err = cmdContain(os.Args[2:])
	case "nonrec":
		verdict, err = cmdNonrec(os.Args[2:])
	case "ucq":
		verdict, err = cmdUCQ(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "equiv:", err)
		os.Exit(2)
	}
	if !verdict {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: equiv <contain|nonrec> [flags]
  contain -program FILE -goal PRED -queries FILE [-linear] [-max-states N]
  nonrec  -program FILE -nonrec FILE -goal PRED [-max-states N]
  ucq     -left FILE -right FILE -goal PRED  (UCQ vs UCQ equivalence)`)
	os.Exit(2)
}

func loadProgram(path string) (*ast.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.Program(string(src))
}

// loadUCQ reads a union of conjunctive queries written as Datalog rules
// whose heads share the goal predicate.
func loadUCQ(path, goal string) (ucq.UCQ, error) {
	prog, err := loadProgram(path)
	if err != nil {
		return ucq.UCQ{}, err
	}
	var ds []cq.CQ
	for _, r := range prog.Rules {
		if r.Head.Pred != goal {
			return ucq.UCQ{}, fmt.Errorf("query head %s does not match goal %q", r.Head, goal)
		}
		ds = append(ds, cq.CQ{Head: r.Head, Body: r.Body})
	}
	u := ucq.New(ds...)
	return u, u.Validate()
}

// evalOpts assembles core.Options from the shared bounding flags. The
// returned cancel must be deferred by the caller.
func evalOpts(maxStates, workers int, timeout time.Duration) (core.Options, context.CancelFunc) {
	opts := core.Options{MaxStates: maxStates, Workers: workers}
	if timeout <= 0 {
		return opts, func() {}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	opts.Ctx = ctx
	return opts, cancel
}

func cmdContain(args []string) (bool, error) {
	fs := flag.NewFlagSet("contain", flag.ExitOnError)
	progPath := fs.String("program", "", "recursive program file")
	goal := fs.String("goal", "", "goal predicate")
	queriesPath := fs.String("queries", "", "union of conjunctive queries (as rules)")
	linear := fs.Bool("linear", false, "use the word-automaton procedure (path-linear programs)")
	maxStates := fs.Int("max-states", 0, "abort if an automaton exceeds this many states")
	workers := fs.Int("workers", 0, "worker goroutines for automata construction and containment (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "abort the check after this duration (0 = no limit)")
	fs.Parse(args)
	if *progPath == "" || *goal == "" || *queriesPath == "" {
		return false, fmt.Errorf("contain needs -program, -goal, and -queries")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return false, err
	}
	q, err := loadUCQ(*queriesPath, *goal)
	if err != nil {
		return false, err
	}
	opts, cancel := evalOpts(*maxStates, *workers, *timeout)
	defer cancel()
	var res core.Result
	if *linear {
		if !prog.IsPathLinear() {
			inlined, err := nonrec.InlineNonrecursive(prog, *goal)
			if err != nil {
				return false, err
			}
			prog = inlined
		}
		res, err = core.ContainsUCQLinear(prog, *goal, q, opts)
	} else {
		res, err = core.ContainsUCQ(prog, *goal, q, opts)
	}
	if err != nil {
		return false, err
	}
	report(res)
	return res.Contained, nil
}

func report(res core.Result) {
	fmt.Fprintf(os.Stderr, "%% alphabet %d letters, A^ptrees %d states, A^theta %d states\n",
		res.Stats.Letters, res.Stats.PtreeStates, res.Stats.ThetaStates)
	if res.Contained {
		fmt.Println("CONTAINED")
		return
	}
	fmt.Println("NOT CONTAINED")
	fmt.Println("% counterexample proof tree:")
	fmt.Print(res.Witness.Tree)
	fmt.Printf("%% counterexample expansion: %s\n", res.Witness.Query)
	db, head := res.Witness.Query.CanonicalDB()
	fmt.Println("% separating database:")
	fmt.Println(db)
	fmt.Printf("%% separating tuple: %v\n", head)
}

// cmdUCQ decides equivalence of two unions of conjunctive queries via
// Sagiv-Yannakakis containment.
func cmdUCQ(args []string) (bool, error) {
	fs := flag.NewFlagSet("ucq", flag.ExitOnError)
	leftPath := fs.String("left", "", "first UCQ file (rules)")
	rightPath := fs.String("right", "", "second UCQ file (rules)")
	goal := fs.String("goal", "", "goal predicate")
	fs.Parse(args)
	if *leftPath == "" || *rightPath == "" || *goal == "" {
		return false, fmt.Errorf("ucq needs -left, -right, and -goal")
	}
	left, err := loadUCQ(*leftPath, *goal)
	if err != nil {
		return false, err
	}
	right, err := loadUCQ(*rightPath, *goal)
	if err != nil {
		return false, err
	}
	lr := ucq.ContainedInUCQ(left, right)
	rl := ucq.ContainedInUCQ(right, left)
	fmt.Fprintf(os.Stderr, "%% left ⊆ right: %v; right ⊆ left: %v\n", lr, rl)
	if lr && rl {
		fmt.Println("EQUIVALENT")
		min := ucq.Minimize(left)
		fmt.Printf("%% canonical minimal form (%d disjuncts):\n", min.Size())
		fmt.Print(min)
		return true, nil
	}
	fmt.Println("NOT EQUIVALENT")
	return false, nil
}

func cmdNonrec(args []string) (bool, error) {
	fs := flag.NewFlagSet("nonrec", flag.ExitOnError)
	progPath := fs.String("program", "", "recursive program file")
	nrPath := fs.String("nonrec", "", "nonrecursive program file")
	goal := fs.String("goal", "", "goal predicate")
	maxStates := fs.Int("max-states", 0, "abort if an automaton exceeds this many states")
	workers := fs.Int("workers", 0, "worker goroutines for automata construction and containment (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "abort the check after this duration (0 = no limit)")
	fs.Parse(args)
	if *progPath == "" || *nrPath == "" || *goal == "" {
		return false, fmt.Errorf("nonrec needs -program, -nonrec, and -goal")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return false, err
	}
	nr, err := loadProgram(*nrPath)
	if err != nil {
		return false, err
	}
	opts, cancel := evalOpts(*maxStates, *workers, *timeout)
	defer cancel()
	res, err := core.EquivalentToNonrecursive(prog, *goal, nr, opts)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(os.Stderr, "%% nonrecursive program unfolds to %d disjuncts\n", res.UnfoldedDisjuncts)
	fmt.Fprintf(os.Stderr, "%% alphabet %d letters, A^ptrees %d states, A^theta %d states\n",
		res.Stats.Letters, res.Stats.PtreeStates, res.Stats.ThetaStates)
	if res.Equivalent {
		fmt.Println("EQUIVALENT")
		return true, nil
	}
	fmt.Printf("NOT EQUIVALENT (%s)\n", res.Failure)
	if res.Witness != nil {
		fmt.Println("% counterexample proof tree:")
		fmt.Print(res.Witness.Tree)
		fmt.Printf("%% counterexample expansion: %s\n", res.Witness.Query)
	}
	if res.FailingCQ != nil {
		fmt.Printf("%% nonrecursive disjunct not contained in the recursive program: %s\n", res.FailingCQ)
	}
	fmt.Println("% separating database:")
	fmt.Println(res.SeparatingDB)
	fmt.Printf("%% separating tuple: %v\n", res.SeparatingTuple)
	return false, nil
}
