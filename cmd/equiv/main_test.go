package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tcSrc = "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- b(X, Y).\n"

const paths2Src = "p(X, Y) :- b(X, Y).\np(X, Y) :- e(X, A), b(A, Y).\n"

func TestCmdContain(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", tcSrc)
	qs := write(t, dir, "q.dl", paths2Src)
	ok, err := cmdContain([]string{"-program", prog, "-goal", "p", "-queries", qs})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("TC should not be contained in paths<=2")
	}
	// Word-automaton route agrees.
	ok, err = cmdContain([]string{"-program", prog, "-goal", "p", "-queries", qs, "-linear"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("linear route disagrees")
	}
	// Mismatched query head.
	bad := write(t, dir, "bad.dl", "q(X) :- e(X, X).\n")
	if _, err := cmdContain([]string{"-program", prog, "-goal", "p", "-queries", bad}); err == nil {
		t.Error("head mismatch accepted")
	}
	// The -linear flag inlines when needed: a linear but not
	// path-linear program.
	mixed := write(t, dir, "mixed.dl", `
		p(X, Y) :- step(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Y).
		step(X, Y) :- e(X, Y).
	`)
	ok, err = cmdContain([]string{"-program", mixed, "-goal", "p", "-queries", qs, "-linear"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("mixed program not contained in paths<=2")
	}
}

func TestCmdNonrec(t *testing.T) {
	dir := t.TempDir()
	trendy := write(t, dir, "trendy.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- trendy(X), buys(Z, Y).\n")
	trendyNR := write(t, dir, "trendy_nr.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- trendy(X), likes(Z, Y).\n")
	ok, err := cmdNonrec([]string{"-program", trendy, "-nonrec", trendyNR, "-goal", "buys"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("trendy should be equivalent to its rewriting")
	}
	knows := write(t, dir, "knows.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- knows(X, Z), buys(Z, Y).\n")
	knowsNR := write(t, dir, "knows_nr.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- knows(X, Z), likes(Z, Y).\n")
	ok, err = cmdNonrec([]string{"-program", knows, "-nonrec", knowsNR, "-goal", "buys"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("knows is inherently recursive")
	}
	// A recursive second program is rejected.
	if _, err := cmdNonrec([]string{"-program", knows, "-nonrec", knows, "-goal", "buys"}); err == nil {
		t.Error("recursive -nonrec accepted")
	}
}

func TestCmdUCQ(t *testing.T) {
	dir := t.TempDir()
	left := write(t, dir, "l.dl", "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Y), e(X, Z).\n")
	right := write(t, dir, "r.dl", "p(U, V) :- e(U, V).\n")
	ok, err := cmdUCQ([]string{"-left", left, "-right", right, "-goal", "p"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("redundant-atom union should be equivalent to the single edge query")
	}
	other := write(t, dir, "o.dl", "p(X, Y) :- e(X, Z), e(Z, Y).\n")
	ok, err = cmdUCQ([]string{"-left", left, "-right", other, "-goal", "p"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("edge query is not equivalent to path-2")
	}
	if _, err := cmdUCQ([]string{"-left", left, "-goal", "p"}); err == nil {
		t.Error("missing flags accepted")
	}
}
