package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datalogeq/internal/tm"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs fn with one of the standard streams redirected into a
// buffer and returns what fn printed there.
func capture(t *testing.T, stream **os.File, fn func()) string {
	t.Helper()
	old := *stream
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	*stream = w
	defer func() { *stream = old }()
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	fn()
	w.Close()
	return <-done
}

func captureStdout(t *testing.T, fn func()) string {
	return capture(t, &os.Stdout, fn)
}

const tcSrc = "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- b(X, Y).\n"

const paths2Src = "p(X, Y) :- b(X, Y).\np(X, Y) :- e(X, A), b(A, Y).\n"

func TestCmdContain(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", tcSrc)
	qs := write(t, dir, "q.dl", paths2Src)
	code, err := cmdContain([]string{"-program", prog, "-goal", "p", "-queries", qs})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d; TC should not be contained in paths<=2", code)
	}
	// Word-automaton route agrees.
	code, err = cmdContain([]string{"-program", prog, "-goal", "p", "-queries", qs, "-linear"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d; linear route disagrees", code)
	}
	// Mismatched query head.
	bad := write(t, dir, "bad.dl", "q(X) :- e(X, X).\n")
	if _, err := cmdContain([]string{"-program", prog, "-goal", "p", "-queries", bad}); err == nil {
		t.Error("head mismatch accepted")
	}
	// The -linear flag inlines when needed: a linear but not
	// path-linear program.
	mixed := write(t, dir, "mixed.dl", `
		p(X, Y) :- step(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Y).
		step(X, Y) :- e(X, Y).
	`)
	code, err = cmdContain([]string{"-program", mixed, "-goal", "p", "-queries", qs, "-linear"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d; mixed program not contained in paths<=2", code)
	}
}

// TestCmdContainBudgetTrip is the acceptance criterion of the resource
// governor: a budget-tripped `equiv contain` run on a lower-bound
// construction (the §5.3 reduction instance) exits 0 and reports
// UNKNOWN — graceful degradation, not an error.
func TestCmdContainBudgetTrip(t *testing.T) {
	m := &tm.Machine{
		States:      []string{"s0", "s1", "qa"},
		TapeSymbols: []string{"_", "1"},
		Blank:       "_",
		Start:       "s0",
		Accept:      []string{"qa"},
		Transitions: []tm.Transition{
			{State: "s0", Read: "_", Write: "1", Move: tm.Right, NewState: "s1"},
			{State: "s1", Read: "_", Write: "_", Move: tm.Stay, NewState: "qa"},
		},
	}
	e, err := tm.Encode53(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	prog := write(t, dir, "pi.dl", e.Program.String())
	qs := write(t, dir, "theta.dl", e.Errors.String())
	// The full decision on this instance is doubly exponential — the
	// budget is what makes the run terminate at all.
	var code int
	var detail string
	out := captureStdout(t, func() {
		detail = capture(t, &os.Stderr, func() {
			code, err = cmdContain([]string{
				"-program", prog, "-goal", tm.Goal, "-queries", qs,
				"-max-states", "16",
			})
		})
	})
	if err != nil {
		t.Fatalf("budget trip must degrade gracefully, got error: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 for an UNKNOWN verdict", code)
	}
	if !strings.Contains(out, "UNKNOWN") {
		t.Errorf("output %q does not report UNKNOWN", out)
	}
	if !strings.Contains(detail, "budget exhausted") || !strings.Contains(detail, "states") {
		t.Errorf("stderr %q does not carry the limit detail", detail)
	}
	if !strings.Contains(detail, "progress at trip") {
		t.Errorf("stderr %q does not carry the progress snapshot", detail)
	}
}

func TestCmdNonrec(t *testing.T) {
	dir := t.TempDir()
	trendy := write(t, dir, "trendy.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- trendy(X), buys(Z, Y).\n")
	trendyNR := write(t, dir, "trendy_nr.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- trendy(X), likes(Z, Y).\n")
	code, err := cmdNonrec([]string{"-program", trendy, "-nonrec", trendyNR, "-goal", "buys"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d; trendy should be equivalent to its rewriting", code)
	}
	knows := write(t, dir, "knows.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- knows(X, Z), buys(Z, Y).\n")
	knowsNR := write(t, dir, "knows_nr.dl", "buys(X, Y) :- likes(X, Y).\nbuys(X, Y) :- knows(X, Z), likes(Z, Y).\n")
	code, err = cmdNonrec([]string{"-program", knows, "-nonrec", knowsNR, "-goal", "buys"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d; knows is inherently recursive", code)
	}
	// A recursive second program is rejected.
	if _, err := cmdNonrec([]string{"-program", knows, "-nonrec", knows, "-goal", "buys"}); err == nil {
		t.Error("recursive -nonrec accepted")
	}
	// A budget trip degrades to UNKNOWN with exit 0.
	var out string
	out = captureStdout(t, func() {
		code, err = cmdNonrec([]string{"-program", knows, "-nonrec", knowsNR, "-goal", "buys", "-max-states", "2"})
	})
	if err != nil || code != 0 {
		t.Errorf("tripped nonrec: code=%d err=%v, want 0/nil", code, err)
	}
	if !strings.Contains(out, "UNKNOWN") {
		t.Errorf("tripped nonrec output %q does not report UNKNOWN", out)
	}
}

func TestCmdUCQ(t *testing.T) {
	dir := t.TempDir()
	left := write(t, dir, "l.dl", "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Y), e(X, Z).\n")
	right := write(t, dir, "r.dl", "p(U, V) :- e(U, V).\n")
	code, err := cmdUCQ([]string{"-left", left, "-right", right, "-goal", "p"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d; redundant-atom union should be equivalent to the single edge query", code)
	}
	other := write(t, dir, "o.dl", "p(X, Y) :- e(X, Z), e(Z, Y).\n")
	code, err = cmdUCQ([]string{"-left", left, "-right", other, "-goal", "p"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d; edge query is not equivalent to path-2", code)
	}
	if _, err := cmdUCQ([]string{"-left", left, "-goal", "p"}); err == nil {
		t.Error("missing flags accepted")
	}
	// A budget trip degrades to UNKNOWN with exit 0.
	var out string
	out = captureStdout(t, func() {
		code, err = cmdUCQ([]string{"-left", left, "-right", right, "-goal", "p", "-max-steps", "1"})
	})
	if err != nil || code != 0 {
		t.Errorf("tripped ucq: code=%d err=%v, want 0/nil", code, err)
	}
	if !strings.Contains(out, "UNKNOWN") {
		t.Errorf("tripped ucq output %q does not report UNKNOWN", out)
	}
}
