package main

// datalog serve: the network front end. Holds one maintained
// materialization (in-memory, or durable with -data) and serves it over
// HTTP/JSON and the line protocol with admission control, per-tenant
// budgets, deadline propagation, idempotent durable mutations, and a
// graceful SIGTERM drain (finish in-flight work, checkpoint, exit 0).

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datalogeq/internal/guard"
	"datalogeq/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	progPath := fs.String("program", "", "program file (required)")
	dataDir := fs.String("data", "", "durable store directory; empty serves from memory")
	httpAddr := fs.String("http", "", "HTTP/JSON listen address (e.g. :8080); empty disables")
	lineAddr := fs.String("line", "", "line-protocol listen address (e.g. :8081); empty disables")
	workers := fs.Int("workers", 0, "eval workers per round (0 = all cores)")
	maxInflight := fs.Int("max-inflight", 4, "concurrently executing requests")
	queueDepth := fs.Int("queue-depth", 16, "admission queue length; requests beyond it are shed")
	defDeadline := fs.Duration("deadline", 10*time.Second, "default per-request deadline")
	maxDeadline := fs.Duration("max-deadline", time.Minute, "clamp for client-supplied deadlines")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff hint on shed and unknown responses")
	idle := fs.Duration("idle-timeout", 2*time.Minute, "close line connections idle this long")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight work on SIGTERM")
	maxFacts := fs.Int64("max-facts", 0, "per-request budget: derived facts (0 = unlimited)")
	maxSteps := fs.Int64("max-steps", 0, "per-request budget: rule firings (0 = unlimited)")
	maxWall := fs.Duration("max-wall", 0, "per-request budget: wall clock (0 = unlimited)")
	maxMaintained := fs.Int64("max-maintained", 0, "per-request budget: maintained row touches (0 = unlimited)")
	snapBytes := fs.Int64("snapshot-bytes", 0, "with -data: WAL size triggering a snapshot (0 = default)")
	maxBytes := fs.Int64("max-bytes", 0, "with -data: refuse commits past this many bytes written (0 = unlimited)")
	quiet := fs.Bool("quiet", false, "suppress operational log lines")
	fs.Parse(args)
	if *progPath == "" {
		return fmt.Errorf("serve needs -program")
	}
	if *httpAddr == "" && *lineAddr == "" {
		return fmt.Errorf("serve needs -http and/or -line")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := server.New(server.Config{
		Program:         prog,
		DataDir:         *dataDir,
		SnapshotBytes:   *snapBytes,
		MaxBytes:        *maxBytes,
		Workers:         *workers,
		MaxInflight:     *maxInflight,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		RetryAfter:      *retryAfter,
		IdleTimeout:     *idle,
		DefaultBudget: guard.Budget{
			MaxFacts:      *maxFacts,
			MaxSteps:      *maxSteps,
			MaxWall:       *maxWall,
			MaxMaintained: *maxMaintained,
		},
		Logf: logf,
	})
	if err != nil {
		return err
	}

	errc := make(chan error, 2)
	var httpSrv *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		logf("datalog serve: http on %s", ln.Addr())
		httpSrv = &http.Server{Handler: srv.Handler()}
		go func() { //repolint:allow goroutine — http.Server accept loop; lifecycle is the drain sequence, not a par pool.
			if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}
	if *lineAddr != "" {
		ln, err := net.Listen("tcp", *lineAddr)
		if err != nil {
			return err
		}
		logf("datalog serve: line protocol on %s", ln.Addr())
		go func() { //repolint:allow goroutine — accept loop lives for the process; lifecycle is the drain sequence, not a par pool.
			if err := srv.ServeLine(ln); err != nil {
				errc <- err
			}
		}()
	}

	// Graceful drain: SIGTERM/SIGINT stop accepting, finish in-flight
	// requests (bounded by -drain-timeout), checkpoint, exit 0.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logf("datalog serve: %v, draining", sig)
	case err := <-errc:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if httpSrv != nil {
		httpSrv.Shutdown(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logf("datalog serve: drained cleanly")
	return nil
}
