package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/guard"
	"datalogeq/internal/opt"
)

// cmdOpt runs the whole-program static optimizer over one or more
// program files: the optimized program is printed to stdout and the
// per-pass report (rule counts, applied rewrites, stratified schedule,
// notes) to stderr, or both as one JSON object per file with -json.
// -verify additionally evaluates each original/optimized pair on
// deterministic synthetic databases and fails if they disagree.
func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	progPath := fs.String("program", "", "program file (may also be given as positional arguments)")
	goal := fs.String("goal", "", "goal predicate: enables goal-directed passes (dead-code, const-prop, recursion elimination)")
	jsonOut := fs.Bool("json", false, "emit {file, program, report} JSON objects instead of text")
	verify := fs.Bool("verify", false, "differentially test original vs optimized on synthetic databases; nonzero exit on mismatch")
	listPasses := fs.Bool("passes", false, "list the pipeline passes and exit")
	depth := fs.Int("depth", 0, "maximum expansion height for recursion elimination (0 = default)")
	maxStates := fs.Int64("max-states", 0, "budget for the recursion-elimination proof search: automaton states (0 = default)")
	noUnfold := fs.Bool("no-unfold", false, "skip recursion elimination, the only super-polynomial pass")
	fs.Parse(args)
	if *listPasses {
		for _, p := range opt.PassNames() {
			fmt.Println(p)
		}
		return nil
	}
	var files []string
	if *progPath != "" {
		files = append(files, *progPath)
	}
	files = append(files, fs.Args()...)
	if len(files) == 0 {
		return fmt.Errorf("opt needs -program or at least one file argument")
	}

	opts := opt.Options{
		Goal:          *goal,
		BoundedDepth:  *depth,
		DisableUnfold: *noUnfold,
	}
	if *maxStates > 0 {
		opts.Budget = guard.Budget{MaxStates: *maxStates}
	}

	failed := 0
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, file := range files {
		prog, err := loadProgram(file)
		if err != nil {
			return err
		}
		optimized, rep, err := opt.Optimize(prog, opts)
		if err != nil {
			return err
		}
		if *jsonOut {
			out := struct {
				File    string      `json:"file"`
				Program string      `json:"program"`
				Report  *opt.Report `json:"report"`
			}{file, optimized.String(), rep}
			if err := enc.Encode(out); err != nil {
				return err
			}
		} else {
			if len(files) > 1 {
				fmt.Printf("%% %s\n", file)
			}
			fmt.Print(optimized.String())
			fmt.Fprintf(os.Stderr, "%% %s:\n%s", file, rep)
		}
		if *verify {
			if err := verifyOptimized(prog, optimized, *goal); err != nil {
				fmt.Fprintf(os.Stderr, "%% VERIFY FAILED %s: %v\n", file, err)
				failed++
			} else {
				fmt.Fprintf(os.Stderr, "%% verify ok: %s\n", file)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("opt: verification failed for %d file(s)", failed)
	}
	return nil
}

// verifyOptimized evaluates both programs over deterministic synthetic
// databases (three seeds of random facts over the original program's
// EDB predicates) and reports the first disagreement. With a goal it
// compares the goal relation — goal-directed rewrites may legitimately
// drop everything else — otherwise the entire fixpoint.
func verifyOptimized(orig, optimized *ast.Program, goal string) error {
	preds := make(map[string]int)
	for s := range orig.EDBPreds() {
		preds[s.Name] = s.Arity
	}
	for seed := int64(0); seed < 3; seed++ {
		edb := gen.RandomDB(rand.New(rand.NewSource(seed)), preds, 5, 12)
		a, _, err := eval.Eval(orig, edb, eval.Options{})
		if err != nil {
			return fmt.Errorf("seed %d: original: %w", seed, err)
		}
		b, _, err := eval.Eval(optimized, edb, eval.Options{})
		if err != nil {
			return fmt.Errorf("seed %d: optimized: %w", seed, err)
		}
		if goal != "" {
			if !relEqual(a.Lookup(goal), b.Lookup(goal)) {
				return fmt.Errorf("seed %d: goal relation %s differs", seed, goal)
			}
			continue
		}
		if !a.Equal(b) {
			return fmt.Errorf("seed %d: fixpoints differ", seed)
		}
	}
	return nil
}

// relEqual compares two possibly-nil relations; nil means empty.
func relEqual(a, b *database.Relation) bool {
	if a == nil || b == nil {
		return (a == nil || a.Len() == 0) && (b == nil || b.Len() == 0)
	}
	return a.Equal(b)
}
