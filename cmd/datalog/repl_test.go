package main

import (
	"strings"
	"testing"
	"time"

	"datalogeq/internal/guard"
)

func TestReplSession(t *testing.T) {
	s := newSession()
	cases := []struct {
		in   string
		want string
	}{
		{"p(X, Y) :- e(X, Z), p(Z, Y).", "ok"},
		{"p(X, Y) :- e(X, Y).", "ok"},
		{"e(a, b). e(b, c).", "ok (2 statements)"},
		{"?- p(a, X).", "X = b"},
		{"?- p(c, X).", "no answers"},
		{"?- p(a, c).", "true"},
		{"?- p(c, a).", "false"},
		{"?- .", "error"},
		{"p(X :- e(X).", "error"},
	}
	for _, c := range cases {
		got := s.statement(c.in)
		if !strings.Contains(got, c.want) {
			t.Errorf("statement(%q) = %q, want substring %q", c.in, got, c.want)
		}
	}
}

func TestReplRejectsInvalidWithoutMutating(t *testing.T) {
	s := newSession()
	s.statement("p(X) :- e(X).")
	// Arity clash with the existing p/1.
	got := s.statement("p(X, Y) :- e(X).")
	if !strings.Contains(got, "error") {
		t.Fatalf("arity clash accepted: %q", got)
	}
	if len(s.prog.Rules) != 1 {
		t.Errorf("session mutated by bad statement: %d rules", len(s.prog.Rules))
	}
	// Fact arity clash.
	s.statement("e(a).")
	got = s.statement("e(a, b).")
	if !strings.Contains(got, "error") {
		t.Errorf("fact arity clash accepted: %q", got)
	}
}

func TestReplCommands(t *testing.T) {
	s := newSession()
	s.statement("e(a, b).")
	s.statement("p(X) :- e(X, Y).")
	if quit, msg := s.command(":list"); quit || !strings.Contains(msg, "e(a, b).") {
		t.Errorf(":list = %q", msg)
	}
	if quit, msg := s.command(":classify"); quit || !strings.Contains(msg, "recursive: false") {
		t.Errorf(":classify = %q", msg)
	}
	if quit, _ := s.command(":quit"); !quit {
		t.Error(":quit should quit")
	}
	if _, msg := s.command(":nonsense"); !strings.Contains(msg, "unknown") {
		t.Errorf("unknown command: %q", msg)
	}
	if quit, msg := s.command(":clear"); quit || msg != "cleared" {
		t.Errorf(":clear = %q", msg)
	}
	if len(s.prog.Rules) != 0 || s.facts.FactCount() != 0 {
		t.Error(":clear did not reset")
	}
}

func TestReplLoop(t *testing.T) {
	in := strings.NewReader(`
p(X, Y) :-
  e(X, Z),
  p(Z, Y).
p(X, Y) :- e(X, Y).
e(a, b). e(b, c).
?- p(a, X).
:quit
`)
	var out strings.Builder
	s := newSession()
	if err := s.loop(in, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"X = c", "bye"} {
		if !strings.Contains(text, want) {
			t.Errorf("loop output missing %q:\n%s", want, text)
		}
	}
}

// TestReplPoisonedInput: a query whose evaluation blows its budget or
// panics internally must come back as a structured error with the
// session intact — the next query still answers.
func TestReplPoisonedInput(t *testing.T) {
	setup := func(t *testing.T) *session {
		t.Helper()
		s := newSession()
		for _, stmt := range []string{
			"p(X, Y) :- e(X, Z), p(Z, Y).",
			"p(X, Y) :- e(X, Y).",
			"e(a, b). e(b, c).",
		} {
			if got := s.statement(stmt); !strings.Contains(got, "ok") {
				t.Fatalf("setup statement %q: %q", stmt, got)
			}
		}
		return s
	}

	t.Run("budget-trip", func(t *testing.T) {
		s := setup(t)
		s.budget = guard.Budget{MaxFacts: 1}
		got := s.query("p(a, X)")
		if !strings.Contains(got, "error:") || !strings.Contains(got, "budget exhausted") {
			t.Fatalf("tripped query = %q, want structured budget error", got)
		}
		if !strings.Contains(got, "session preserved") {
			t.Errorf("tripped query %q does not reassure the session survives", got)
		}
		s.budget = replBudget
		if got := s.query("p(a, X)"); !strings.Contains(got, "X = b") {
			t.Errorf("session did not survive the trip: %q", got)
		}
	})

	t.Run("injected-panic", func(t *testing.T) {
		s := setup(t)
		s.budget = guard.InjectPanic(guard.Budget{}, guard.Facts, 1)
		got := s.query("p(a, X)")
		if !strings.Contains(got, "error: internal panic") || !strings.Contains(got, "session preserved") {
			t.Fatalf("poisoned query = %q, want structured panic report", got)
		}
		s.budget = replBudget
		if got := s.query("p(a, X)"); !strings.Contains(got, "X = b") {
			t.Errorf("session did not survive the panic: %q", got)
		}
	})

	t.Run("loop-survives", func(t *testing.T) {
		// End to end through the reader loop: the poisoned first query
		// reports, the second one answers, :quit says bye.
		in := strings.NewReader("?- p(a, X).\n?- p(b, X).\n:quit\n")
		var out strings.Builder
		s := setup(t)
		s.budget = guard.Budget{MaxFacts: 1}
		if err := s.loop(in, &out); err != nil {
			t.Fatal(err)
		}
		text := out.String()
		if !strings.Contains(text, "budget exhausted") || !strings.Contains(text, "bye") {
			t.Errorf("loop output missing trip report or prompt recovery:\n%s", text)
		}
	})

	t.Run("wall-budget", func(t *testing.T) {
		s := setup(t)
		s.budget = guard.Budget{MaxWall: time.Nanosecond}
		got := s.query("p(a, X)")
		if !strings.Contains(got, "error:") {
			t.Fatalf("expired wall budget not reported: %q", got)
		}
		s.budget = replBudget
		if got := s.query("p(a, X)"); !strings.Contains(got, "X = b") {
			t.Errorf("session did not survive the wall trip: %q", got)
		}
	})
}

func TestStatementComplete(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"p(X).", true},
		{"p(X)", false},
		{"p(X). % trailing comment", true}, // comments do not affect completeness
		{"p(X).\n% comment\n", true},
		{"p('dot . inside')", false},
		{"p('dot . inside').", true},
		{"p(X) :- \n", false},
	}
	for _, c := range cases {
		if got := statementComplete(c.in); got != c.want {
			t.Errorf("statementComplete(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestReplInsertRetract(t *testing.T) {
	s := newSession()
	s.statement("p(X, Y) :- e(X, Y).")
	s.statement("p(X, Y) :- e(X, Z), p(Z, Y).")
	s.statement("e(a, b).")

	_, msg := s.command(":insert e(b, c)")
	if !strings.Contains(msg, "materialized") || !strings.Contains(msg, "rows in") {
		t.Fatalf(":insert = %q", msg)
	}
	if got := s.statement("?- p(a, c)."); !strings.Contains(got, "true") {
		t.Errorf("after :insert, p(a, c) = %q", got)
	}

	// Second update reuses the handle: no re-materialization.
	_, msg = s.command(":retract e(a, b)")
	if strings.Contains(msg, "materialized") || !strings.Contains(msg, "rows out") {
		t.Fatalf(":retract = %q", msg)
	}
	if got := s.statement("?- p(a, c)."); !strings.Contains(got, "false") {
		t.Errorf("after :retract, p(a, c) = %q", got)
	}
	if got := s.statement("?- p(b, c)."); !strings.Contains(got, "true") {
		t.Errorf("after :retract, p(b, c) = %q", got)
	}

	// A plain statement invalidates the handle; the next :insert
	// rebuilds it against the updated session.
	s.statement("q(X) :- p(X, c).")
	if s.handle != nil {
		t.Fatal("statement did not invalidate the handle")
	}
	_, msg = s.command(":insert e(c, d)")
	if !strings.Contains(msg, "materialized") {
		t.Fatalf("handle not rebuilt: %q", msg)
	}
	if got := s.statement("?- q(b)."); !strings.Contains(got, "true") {
		t.Errorf("after rebuild, q(b) = %q", got)
	}

	if _, msg := s.command(":insert"); !strings.Contains(msg, "usage") {
		t.Errorf("bare :insert = %q", msg)
	}
	if _, msg := s.command(":insert e(X, b)"); !strings.Contains(msg, "error") {
		t.Errorf("non-ground :insert = %q", msg)
	}
}
