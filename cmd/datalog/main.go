// Command datalog is a Datalog workbench: it evaluates programs over
// fact files, unfolds nonrecursive programs into unions of conjunctive
// queries, classifies programs, and renders expansion trees.
//
// Usage:
//
//	datalog eval -program tc.dl -db graph.dl -goal p [-naive] [-workers 4] [-explain] [-no-planner] [-max-facts N] [-max-steps N] [-timeout 30s]
//	datalog eval -program tc.dl -goal p -data ./store [-watch] [-checkpoint] [-snapshot-bytes N] [-max-bytes N]
//	datalog unfold -program nonrec.dl -goal q [-minimize]
//	datalog classify -program prog.dl
//	datalog check prog.dl [-goal p] [-json] [-max-states N]
//	datalog trees -program tc.dl -goal p -depth 3 [-count 5]
//	datalog recover -data ./store [-program tc.dl] [-verify]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/expansion"
	"datalogeq/internal/guard"
	"datalogeq/internal/nonrec"
	"datalogeq/internal/parser"
	"datalogeq/internal/ucq"

	_ "datalogeq/internal/ivm" // registers the incremental maintainer behind eval.Maintain
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "eval":
		err = cmdEval(os.Args[2:])
	case "unfold":
		err = cmdUnfold(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "opt":
		err = cmdOpt(os.Args[2:])
	case "trees":
		err = cmdTrees(os.Args[2:])
	case "repl":
		err = cmdRepl(os.Args[2:])
	case "recover":
		err = cmdRecover(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datalog:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: datalog <eval|unfold|classify|check|opt|trees|repl|recover|serve> [flags]
  eval     -program FILE -db FILE -goal PRED [-naive] [-workers N] [-explain] [-optimize] [-no-planner] [-max-facts N] [-max-steps N] [-timeout D]
           [-data DIR] [-watch] [-checkpoint] [-snapshot-bytes N] [-max-bytes N]
  unfold   -program FILE -goal PRED [-minimize]
  classify -program FILE
  check    FILE... [-goal PRED] [-json] [-no-info] [-passes] [-max-states N]
  opt      FILE... [-goal PRED] [-json] [-verify] [-passes] [-depth N] [-max-states N] [-no-unfold]
  trees    -program FILE -goal PRED [-depth N] [-count N] [-dot]
  repl     interactive session
  recover  -data DIR [-program FILE] [-verify]
  serve    -program FILE [-data DIR] [-http ADDR] [-line ADDR] [-max-inflight N] [-queue-depth N]
           [-deadline D] [-max-deadline D] [-max-facts N] [-max-steps N] [-max-wall D] [-max-maintained N]`)
	os.Exit(2)
}

func loadProgram(path string) (*ast.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.Program(string(src))
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	progPath := fs.String("program", "", "program file")
	dbPath := fs.String("db", "", "facts file")
	goal := fs.String("goal", "", "goal predicate")
	naive := fs.Bool("naive", false, "use naive instead of semi-naive evaluation")
	workers := fs.Int("workers", 0, "worker goroutines per evaluation round (0 = all cores); results are identical for every value")
	explain := fs.Bool("explain", false, "print each rule's chosen join tree (access paths, estimated vs actual rows) to stderr")
	noPlanner := fs.Bool("no-planner", false, "disable cost-based join ordering and keep the textual atom order; results are identical either way")
	optimize := fs.Bool("optimize", false, "run the static optimizer on the program (goal-directed, so non-goal relations may be pruned) and evaluate under its SCC-stratified schedule")
	maxFacts := fs.Int64("max-facts", 0, "budget: abort after deriving this many facts (0 = unlimited); a trip prints the partial result")
	maxSteps := fs.Int64("max-steps", 0, "budget: abort after this many rule firings (0 = unlimited); a trip prints the partial result")
	timeout := fs.Duration("timeout", 0, "budget: abort evaluation after this duration (0 = no limit)")
	watch := fs.Bool("watch", false, "after the initial fixpoint, maintain it incrementally: read '+fact.'/'-fact.' update lines from stdin, print per-update stats, and print the goal relation at EOF")
	dataDir := fs.String("data", "", "durable store directory: recover state from its snapshot and WAL, and commit every update durably (crash-safe)")
	checkpoint := fs.Bool("checkpoint", false, "with -data: write a snapshot and truncate the WAL before exiting, so the next open recovers without replay")
	snapBytes := fs.Int64("snapshot-bytes", 0, "with -data: WAL size that triggers an automatic snapshot (0 = 1 MiB default, negative = only on -checkpoint)")
	maxBytes := fs.Int64("max-bytes", 0, "with -data: budget: refuse commits after this many bytes written to disk (0 = unlimited)")
	fs.Parse(args)
	if *progPath == "" || *goal == "" || (*dbPath == "" && *dataDir == "") {
		return fmt.Errorf("eval needs -program, -goal, and -db or -data")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	db := database.New()
	if *dbPath != "" {
		src, err := os.ReadFile(*dbPath)
		if err != nil {
			return err
		}
		db, err = database.Parse(string(src))
		if err != nil {
			return err
		}
	}
	opts := eval.Options{
		Naive:     *naive,
		Workers:   *workers,
		NoPlanner: *noPlanner,
		Budget:    guard.Budget{MaxFacts: *maxFacts, MaxSteps: *maxSteps, MaxWall: *timeout},
	}
	if *optimize {
		opts.Optimize = true
		opts.OptimizeGoal = *goal
	}
	if *dataDir != "" {
		return evalDurable(prog, db, *goal, opts, *dataDir, *snapBytes, *maxBytes, *watch, *checkpoint)
	}
	if *watch {
		if prog.GoalArity(*goal) < 0 {
			return fmt.Errorf("eval: goal predicate %q does not occur in program", *goal)
		}
		h, stats, err := eval.Maintain(prog, db, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%% materialized: %d facts derived, %d rule firings; watching stdin for +fact./-fact. updates\n",
			stats.Derived, stats.Firings)
		return evalWatch(h, *goal, os.Stdin, os.Stdout)
	}
	// Eval (not Goal) so a budget trip still yields the partial database.
	var out *database.DB
	var stats eval.Stats
	var report *eval.Explain
	if *explain {
		out, stats, report, err = eval.EvalExplain(prog, db, opts)
	} else {
		out, stats, err = eval.Eval(prog, db, opts)
	}
	var limit *guard.LimitError
	if err != nil && !errors.As(err, &limit) {
		return err
	}
	if prog.GoalArity(*goal) < 0 {
		return fmt.Errorf("eval: goal predicate %q does not occur in program", *goal)
	}
	lines := goalFactLines(out, *goal)
	for _, l := range lines {
		fmt.Println(l)
	}
	if report != nil {
		fmt.Fprintf(os.Stderr, "%% query plans:\n%s", report)
	}
	fmt.Fprintf(os.Stderr, "%% %d tuples, %d iterations, %d facts derived, %d rule firings\n",
		len(lines), stats.Iterations, stats.Derived, stats.Firings)
	fmt.Fprintf(os.Stderr, "%% plan cache: %d hits, %d misses, %d replans\n",
		stats.PlanCacheHits, stats.PlanCacheMisses, stats.PlanReplans)
	if stats.Budget != (guard.Usage{}) {
		fmt.Fprintf(os.Stderr, "%% budget consumed: %s\n", stats.Budget)
	}
	if limit != nil {
		fmt.Fprintf(os.Stderr, "%% INCOMPLETE — budget exhausted: %v\n", limit)
		fmt.Fprintf(os.Stderr, "%% the tuples above are a sound underapproximation of the fixpoint\n")
	}
	return nil
}

// goalFactLines renders the goal relation as sorted fact lines.
func goalFactLines(db *database.DB, goal string) []string {
	rel := db.Lookup(goal)
	if rel == nil {
		return nil
	}
	lines := make([]string, 0, rel.Len())
	var row database.Row
	for i := 0; i < rel.Len(); i++ {
		row = rel.AppendRowAt(row[:0], i)
		args := make([]ast.Term, len(row))
		for j, id := range row {
			args[j] = ast.C(database.Symbol(id))
		}
		lines = append(lines, ast.Atom{Pred: goal, Args: args}.String()+".")
	}
	sort.Strings(lines)
	return lines
}

// evalDurable is eval's persistent mode: the handle is recovered from
// (or freshly bound to) the durable store in dir, a -db file seeds a
// fresh store as its first committed batch, and -watch updates are
// committed through the WAL — each acknowledged update survives a
// crash. -checkpoint folds the WAL into a snapshot before exit.
func evalDurable(prog *ast.Program, db *database.DB, goal string, opts eval.Options, dir string, snapBytes, maxBytes int64, watch, checkpoint bool) error {
	if prog.GoalArity(goal) < 0 {
		return fmt.Errorf("eval: goal predicate %q does not occur in program", goal)
	}
	d, err := database.Open(dir, database.OpenOptions{
		Budget:        guard.Budget{MaxBytes: maxBytes},
		SnapshotBytes: snapBytes,
	})
	if err != nil {
		return err
	}
	fresh := d.Fresh()
	if !fresh {
		fmt.Fprintf(os.Stderr, "%% recovering %s: generation %d, %d committed batches (%d replayed from WAL, %d torn bytes discarded)\n",
			dir, d.Gen(), d.Seq(), len(d.Tail()), d.TornBytes())
	}
	h, stats, err := eval.MaintainDurable(prog, d, opts)
	if err != nil {
		return err
	}
	defer h.Close()
	if fresh {
		if facts := dbAtoms(db); len(facts) > 0 {
			us, err := h.Insert(facts)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "%% seeded fresh store with %d base facts: %s\n", len(facts), us)
		}
	} else if len(db.Preds()) > 0 {
		fmt.Fprintf(os.Stderr, "%% note: store already holds state; -db file ignored (state comes from %s)\n", dir)
	}
	if fresh && stats != (eval.Stats{}) {
		fmt.Fprintf(os.Stderr, "%% materialized: %d facts derived, %d rule firings\n", stats.Derived, stats.Firings)
	}
	if watch {
		fmt.Fprintf(os.Stderr, "%% watching stdin for +fact./-fact. updates; each update is committed durably\n")
		if err := evalWatch(h, goal, os.Stdin, os.Stdout); err != nil {
			return err
		}
	} else {
		for _, l := range goalFactLines(h.DB(), goal) {
			fmt.Println(l)
		}
	}
	if checkpoint {
		if err := h.Checkpoint(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%% checkpoint written: %d batches folded into the snapshot\n", h.Seq())
	}
	return nil
}

// dbAtoms renders every tuple of db as a ground atom, in sorted
// predicate order — the batch that seeds a fresh durable store from a
// -db facts file.
func dbAtoms(db *database.DB) []ast.Atom {
	var atoms []ast.Atom
	var row database.Row
	for _, pred := range db.Preds() {
		rel := db.Lookup(pred)
		for i := 0; i < rel.Len(); i++ {
			row = rel.AppendRowAt(row[:0], i)
			args := make([]ast.Term, len(row))
			for j, id := range row {
				args[j] = ast.C(database.Symbol(id))
			}
			atoms = append(atoms, ast.Atom{Pred: pred, Args: args})
		}
	}
	return atoms
}

// evalWatch is eval's incremental mode: a stream of update lines from
// in — "+fact." (or a bare "fact.") inserts, "-fact." retracts; several
// comma-separated facts per line form one batch; '%' comments and blank
// lines are skipped. Each update prints its UpdateStats; at EOF the
// goal relation is printed like a normal eval run. A budget trip aborts
// the stream — the materialization is no longer consistent.
func evalWatch(h *eval.Handle, goal string, in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		retract := false
		switch line[0] {
		case '-':
			retract = true
			line = line[1:]
		case '+':
			line = line[1:]
		}
		atoms, err := parser.AtomList(strings.TrimSuffix(strings.TrimSpace(line), "."))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%% line %d: %v (skipped)\n", lineNo, err)
			continue
		}
		var us eval.UpdateStats
		if retract {
			us, err = h.Retract(atoms)
		} else {
			us, err = h.Insert(atoms)
		}
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		verb := "insert"
		if retract {
			verb = "retract"
		}
		fmt.Fprintf(out, "%% %s: %s\n", verb, us)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	for _, l := range goalFactLines(h.DB(), goal) {
		fmt.Fprintln(out, l)
	}
	return nil
}

func cmdUnfold(args []string) error {
	fs := flag.NewFlagSet("unfold", flag.ExitOnError)
	progPath := fs.String("program", "", "program file")
	goal := fs.String("goal", "", "goal predicate")
	minimize := fs.Bool("minimize", false, "minimize the resulting union")
	fs.Parse(args)
	if *progPath == "" || *goal == "" {
		return fmt.Errorf("unfold needs -program and -goal")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	u, err := nonrec.Unfold(prog, *goal)
	if err != nil {
		return err
	}
	if *minimize {
		u = ucq.Minimize(u)
	}
	fmt.Print(u)
	fmt.Fprintf(os.Stderr, "%% %d disjuncts, %d atoms total\n", u.Size(), u.TotalAtoms())
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	progPath := fs.String("program", "", "program file")
	fs.Parse(args)
	if *progPath == "" {
		return fmt.Errorf("classify needs -program")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	fmt.Printf("rules:         %d\n", len(prog.Rules))
	fmt.Printf("recursive:     %v\n", prog.IsRecursive())
	fmt.Printf("linear:        %v\n", prog.IsLinear())
	fmt.Printf("path-linear:   %v\n", prog.IsPathLinear())
	fmt.Printf("max rule vars: %d\n", prog.MaxRuleVars())
	fmt.Printf("varnum:        %d\n", prog.VarNum())
	var idb, edb []string
	for s := range prog.IDBPreds() {
		idb = append(idb, s.String())
	}
	for s := range prog.EDBPreds() {
		edb = append(edb, s.String())
	}
	sort.Strings(idb)
	sort.Strings(edb)
	fmt.Printf("IDB:           %v\n", idb)
	fmt.Printf("EDB:           %v\n", edb)
	return nil
}

func cmdTrees(args []string) error {
	fs := flag.NewFlagSet("trees", flag.ExitOnError)
	progPath := fs.String("program", "", "program file")
	goal := fs.String("goal", "", "goal predicate")
	depth := fs.Int("depth", 3, "maximum tree height")
	count := fs.Int("count", 5, "maximum number of trees (0 = all)")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of ASCII")
	fs.Parse(args)
	if *progPath == "" || *goal == "" {
		return fmt.Errorf("trees needs -program and -goal")
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		return err
	}
	trees := expansion.Unfoldings(prog, *goal, *depth, *count)
	for i, tr := range trees {
		if *dot {
			fmt.Print(tr.DOT(fmt.Sprintf("tree%d", i+1)))
			continue
		}
		fmt.Printf("%% unfolding expansion tree %d (height %d)\n", i+1, tr.Depth())
		fmt.Print(tr)
		fmt.Printf("%% expansion: %s\n\n", tr.Query())
	}
	fmt.Fprintf(os.Stderr, "%% %d trees up to height %d\n", len(trees), *depth)
	return nil
}

// cmdRecover inspects a durable store directory: what generation and
// WAL it holds, how many batches are committed, and whether a crash
// left torn bytes behind. With -program the full engine state is
// recovered; with -verify the recovered materialization must match a
// from-scratch re-evaluation of the program over the recovered base,
// bit for bit — the recovery half of the determinism contract, checked
// on a live store.
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dataDir := fs.String("data", "", "durable store directory")
	progPath := fs.String("program", "", "program file: recover the full materialization, not just the on-disk inventory")
	verify := fs.Bool("verify", false, "with -program: re-evaluate from scratch over the recovered base and require identical state")
	fs.Parse(args)
	if *dataDir == "" {
		return fmt.Errorf("recover needs -data")
	}
	if *verify && *progPath == "" {
		return fmt.Errorf("recover: -verify needs -program")
	}
	d, err := database.Open(*dataDir, database.OpenOptions{SnapshotBytes: -1})
	if err != nil {
		return err
	}
	fmt.Printf("generation:        %d\n", d.Gen())
	fmt.Printf("snapshot:          %v\n", d.SnapshotState() != nil)
	fmt.Printf("committed batches: %d\n", d.Seq())
	fmt.Printf("wal tail:          %d batches, %d bytes\n", len(d.Tail()), d.WALSize())
	fmt.Printf("torn bytes:        %d\n", d.TornBytes())
	if *progPath == "" {
		return d.Close()
	}
	prog, err := loadProgram(*progPath)
	if err != nil {
		d.Close()
		return err
	}
	h, _, err := eval.MaintainDurable(prog, d, eval.Options{})
	if err != nil {
		return err
	}
	defer h.Close()
	for _, pred := range h.DB().Preds() {
		fmt.Printf("relation:          %s: %d rows (%d base)\n",
			pred, h.DB().Lookup(pred).Len(), baseLen(h.Base(), pred))
	}
	if !*verify {
		return nil
	}
	fresh, _, err := eval.Maintain(prog, h.Base().Clone(), eval.Options{})
	if err != nil {
		return fmt.Errorf("recover: from-scratch re-evaluation: %w", err)
	}
	if got, want := h.DB().String(), fresh.DB().String(); got != want {
		return fmt.Errorf("recover: VERIFY FAILED — recovered state differs from re-evaluation:\n%s\nwant:\n%s", got, want)
	}
	if got, want := h.DB().StatsEpoch(), fresh.DB().StatsEpoch(); got != want {
		return fmt.Errorf("recover: VERIFY FAILED — StatsEpoch %d, re-evaluation %d", got, want)
	}
	fmt.Printf("verify:            ok — recovered state matches from-scratch evaluation\n")
	return nil
}

// baseLen returns the base relation's row count, 0 when absent.
func baseLen(base *database.DB, pred string) int {
	if r := base.Lookup(pred); r != nil {
		return r.Len()
	}
	return 0
}
