package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"datalogeq/internal/analyze"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed alongside fn's error.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	ferr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestCmdCheck(t *testing.T) {
	dir := t.TempDir()
	clean := write(t, dir, "clean.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	unsafe := write(t, dir, "unsafe.dl", "p(X, Y) :- e(X).\n")
	badArity := write(t, dir, "arity.dl", "p(X) :- e(X).\np(X, Y) :- e(X, Y).\n")
	badSyntax := write(t, dir, "syntax.dl", "p(X :- e(X).\n")

	// A clean program with a goal: infos only, exit 0.
	out, err := captureStdout(t, func() error {
		return cmdCheck([]string{"-goal", "p", clean})
	})
	if err != nil {
		t.Errorf("clean program rejected: %v", err)
	}
	if !bytes.Contains([]byte(out), []byte("DL0008")) {
		t.Errorf("no classification reported:\n%s", out)
	}

	// Warnings alone exit 0; -no-info leaves only the warning lines.
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{"-no-info", unsafe})
	})
	if err != nil {
		t.Errorf("warnings must not fail the run: %v", err)
	}
	if !bytes.Contains([]byte(out), []byte("DL0002")) || bytes.Contains([]byte(out), []byte(" info ")) {
		t.Errorf("want only the safety warning:\n%s", out)
	}

	// Arity conflicts are positioned errors and fail the run.
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{badArity})
	})
	if err == nil {
		t.Errorf("arity conflict accepted:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("DL0001")) {
		t.Errorf("no DL0001 in output:\n%s", out)
	}

	// Syntax errors become DL0000 diagnostics; a multi-file run still
	// checks the other files and reports the bad one's file name.
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{badSyntax, clean})
	})
	if err == nil {
		t.Error("syntax error accepted")
	}
	if !bytes.Contains([]byte(out), []byte(filepath.Base(badSyntax)+":")) ||
		!bytes.Contains([]byte(out), []byte("DL0000")) {
		t.Errorf("missing DL0000 for the bad file:\n%s", out)
	}

	// -passes lists the registry.
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{"-passes"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range analyze.Passes() {
		if !bytes.Contains([]byte(out), []byte(p.Code)) {
			t.Errorf("pass %s missing from -passes output", p.Code)
		}
	}

	if err := cmdCheck(nil); err == nil {
		t.Error("no files accepted")
	}

	// -max-states bounds the boundedness pass; a tiny budget must not
	// crash or fail the run — the pass degrades to inconclusive.
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{"-goal", "p", "-max-states", "1", clean})
	})
	if err != nil {
		t.Errorf("tiny -max-states must degrade, got: %v\n%s", err, out)
	}
}

func TestCmdCheckJSON(t *testing.T) {
	dir := t.TempDir()
	unsafe := write(t, dir, "unsafe.dl", "p(X, Y) :- e(X).\n")
	out, err := captureStdout(t, func() error {
		return cmdCheck([]string{"-json", unsafe})
	})
	if err != nil {
		t.Fatal(err)
	}
	var diags []fileDiagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	found := false
	for _, d := range diags {
		if d.Code == "DL0002" && d.File == unsafe && d.Line == 1 && d.Severity == analyze.Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("no positioned DL0002 warning in %s", out)
	}

	// An empty result must still be a JSON array, not null.
	empty := write(t, dir, "empty.dl", "% nothing\n")
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{"-json", empty})
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimSpace([]byte(out))) != "[]" {
		t.Errorf("want [], got %q", out)
	}

	// An unreadable file must not abort before the JSON is written: the
	// output stays a valid array, with the I/O failure as a DL0000 error
	// entry, and the run exits nonzero like any other error finding.
	missing := filepath.Join(dir, "does-not-exist.dl")
	out, err = captureStdout(t, func() error {
		return cmdCheck([]string{"-json", missing, unsafe})
	})
	if err == nil {
		t.Error("unreadable file accepted")
	}
	diags = nil
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output with unreadable file is not a JSON array: %v\n%s", err, out)
	}
	foundMissing, foundOther := false, false
	for _, d := range diags {
		if d.File == missing && d.Code == "DL0000" && d.Severity == analyze.Error {
			foundMissing = true
		}
		if d.File == unsafe && d.Code == "DL0002" {
			foundOther = true
		}
	}
	if !foundMissing || !foundOther {
		t.Errorf("want DL0000 for the missing file and DL0002 for the readable one, got %s", out)
	}
}

// TestCmdCheckTestdata mirrors the CI step: every program under
// /testdata must be free of error-severity findings.
func TestCmdCheckTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs")
	}
	_, err = captureStdout(t, func() error { return cmdCheck(files) })
	if err != nil {
		t.Errorf("testdata programs have analyzer errors: %v", err)
	}
}
