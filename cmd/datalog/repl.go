package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"datalogeq/internal/analyze"
	"datalogeq/internal/ast"
	"datalogeq/internal/cq"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/guard"
	"datalogeq/internal/opt"
	"datalogeq/internal/parser"
)

// cmdRepl runs the interactive session: rules and facts accumulate,
// "?- body." queries evaluate against the current program.
func cmdRepl(args []string) error {
	fmt.Println("datalog repl — enter rules/facts, '?- body.' to query, :help for commands")
	s := newSession()
	return s.loop(os.Stdin, os.Stdout)
}

// session holds the REPL state.
type session struct {
	prog  *ast.Program
	facts *database.DB
	qn    int
	// budget bounds each query evaluation so a runaway recursive
	// program degrades to a structured message instead of hanging or
	// exhausting memory; the session survives the trip.
	budget guard.Budget
	// handle is the maintained materialization behind :insert/:retract,
	// built lazily on first use and dropped whenever the program or
	// facts change through any other path (statements, :load, :clear) —
	// the handle's base database would no longer match the session's.
	handle *eval.Handle
}

// replBudget is the per-query resource budget: generous enough for any
// interactive workload, tight enough that a divergent query comes back
// with an answerable error.
var replBudget = guard.Budget{MaxFacts: 5_000_000, MaxWall: 30 * time.Second}

func newSession() *session {
	return &session{prog: &ast.Program{}, facts: database.New(), budget: replBudget}
}

// safely invokes fn and converts a panic anywhere below (parser,
// analyzer, evaluator) into a structured error message instead of
// killing the session.
func safely(fn func() string) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprintf("error: internal panic: %v (session preserved)", r)
		}
	}()
	return fn()
}

// loop reads statements (possibly spanning lines, terminated by '.') or
// :commands (one per line) and writes responses.
func (s *session) loop(in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(out, "> ")
		} else {
			fmt.Fprint(out, "| ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			var quit bool
			msg := safely(func() string {
				var m string
				quit, m = s.command(trimmed)
				return m
			})
			if msg != "" {
				fmt.Fprintln(out, msg)
			}
			if quit {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !statementComplete(buf.String()) {
			prompt()
			continue
		}
		stmt := buf.String()
		buf.Reset()
		if msg := safely(func() string { return s.statement(stmt) }); msg != "" {
			fmt.Fprintln(out, msg)
		}
		prompt()
	}
	return scanner.Err()
}

// statementComplete reports whether the buffered text ends with a
// period outside quotes and comments.
func statementComplete(text string) bool {
	inQuote := false
	lastMeaningful := byte(0)
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inQuote = false
			}
		case c == '\'':
			inQuote = true
		case c == '%':
			for i < len(text) && text[i] != '\n' {
				i++
			}
			continue
		}
		if !inQuote && c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			lastMeaningful = c
		}
	}
	return lastMeaningful == '.'
}

// command handles a :directive; it returns (quit, message).
func (s *session) command(line string) (bool, string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return true, "bye"
	case ":help", ":h":
		return false, strings.TrimSpace(`
commands:
  p(X, Y) :- e(X, Z), p(Z, Y).   add a rule
  e(a, b).                       add a fact
  ?- p(a, X).                    query
  :plan p(a, X)                  show the join trees chosen for a query
  :list                          show rules and facts
  :classify                      program properties
  :check [GOAL]                  static analysis of the loaded program
  :opt [GOAL]                    show the statically optimized program and rewrite report
  :insert FACT, ...              add facts through incremental maintenance (no re-fixpoint)
  :retract FACT, ...             remove facts, incrementally deleting what they derived
  :load FILE                     load rules/facts from a file
  :clear                         reset the session
  :quit                          leave`)
	case ":list":
		var b strings.Builder
		b.WriteString(s.prog.String())
		b.WriteString(s.facts.String())
		return false, strings.TrimRight(b.String(), "\n")
	case ":clear":
		s.prog = &ast.Program{}
		s.facts = database.New()
		s.handle = nil
		return false, "cleared"
	case ":insert", ":retract":
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		if rest == "" {
			return false, "usage: " + fields[0] + " FACT, ...   (e.g. :insert e(a, b))"
		}
		return false, s.maintain(fields[0] == ":retract", rest)
	case ":classify":
		var b strings.Builder
		fmt.Fprintf(&b, "rules: %d, facts: %d\n", len(s.prog.Rules), s.facts.FactCount())
		fmt.Fprintf(&b, "recursive: %v, linear: %v, path-linear: %v",
			s.prog.IsRecursive(), s.prog.IsLinear(), s.prog.IsPathLinear())
		return false, b.String()
	case ":check":
		goal := ""
		if len(fields) > 1 {
			goal = fields[1]
		}
		return false, s.check(goal)
	case ":opt":
		goal := ""
		if len(fields) > 1 {
			goal = fields[1]
		}
		return false, s.optimize(goal)
	case ":plan":
		body := strings.TrimSpace(strings.TrimPrefix(line, ":plan"))
		body = strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(body, "?-")), ".")
		if body == "" {
			return false, "usage: :plan BODY   (e.g. :plan p(a, X))"
		}
		return false, s.plan(body)
	case ":load":
		if len(fields) != 2 {
			return false, "usage: :load FILE"
		}
		src, err := os.ReadFile(fields[1])
		if err != nil {
			return false, "error: " + err.Error()
		}
		msg := s.statement(string(src))
		if strings.HasPrefix(msg, "error:") {
			return false, msg
		}
		// Loading succeeded: report analyzer warnings for the loaded
		// text (positions refer to the file) but keep the session
		// going — warnings are advice, not failures.
		var b strings.Builder
		if warn := checkSource(string(src), fields[1]); warn != "" {
			b.WriteString(warn)
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "loaded %s", fields[1])
		if msg != "" {
			fmt.Fprintf(&b, " — %s", msg)
		}
		return false, b.String()
	default:
		return false, "unknown command " + fields[0] + " (:help for help)"
	}
}

// check runs the static analyzer over the session's program (rules and
// facts) and renders every diagnostic. Facts are included as bodiless
// rules so arity conflicts with them are caught too.
func (s *session) check(goal string) string {
	prog := s.prog.Clone()
	for _, pred := range s.facts.Preds() {
		rel := s.facts.Lookup(pred)
		var row database.Row
		for i := 0; i < rel.Len(); i++ {
			row = rel.AppendRowAt(row[:0], i)
			args := make([]ast.Term, len(row))
			for j, id := range row {
				args[j] = ast.C(database.Symbol(id))
			}
			prog.Rules = append(prog.Rules, ast.Rule{Head: ast.Atom{Pred: pred, Args: args}})
		}
	}
	diags := analyze.Run(prog, analyze.Options{Goal: goal})
	if len(diags) == 0 {
		return "no findings"
	}
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// optimize runs the static optimizer over the session's rules and
// renders the optimized program with its rewrite report. The session
// program is left untouched — the command is a what-if view, like
// :plan; re-enter the printed rules (after :clear) to adopt them.
func (s *session) optimize(goal string) string {
	if len(s.prog.Rules) == 0 {
		return "no rules loaded"
	}
	optimized, rep, err := opt.Optimize(s.prog, opt.Options{Goal: goal})
	if err != nil {
		return "error: " + err.Error()
	}
	var b strings.Builder
	b.WriteString(strings.TrimRight(optimized.String(), "\n"))
	b.WriteByte('\n')
	b.WriteString(strings.TrimRight(rep.String(), "\n"))
	return b.String()
}

// checkSource analyzes freshly loaded source text and renders its
// warnings and errors (infos are left to :check), or "" when clean.
func checkSource(src, file string) string {
	prog, err := parser.ProgramUnvalidated(src)
	if err != nil {
		return ""
	}
	var lines []string
	for _, d := range analyze.Run(prog, analyze.Options{}) {
		if d.Severity == analyze.Info {
			continue
		}
		lines = append(lines, file+":"+d.String())
	}
	return strings.Join(lines, "\n")
}

// statement handles one or more rules/facts, or a query.
func (s *session) statement(text string) string {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "?-") {
		return s.query(strings.TrimSuffix(strings.TrimSpace(trimmed[2:]), "."))
	}
	prog, err := parser.Program(text)
	if err != nil {
		return "error: " + err.Error()
	}
	// Validate the combined program (and fact arities) before mutating
	// any session state, so a bad statement leaves the session intact.
	candidate := s.prog.Clone()
	var newFacts []ast.Atom
	for _, r := range prog.Rules {
		if r.IsFact() {
			newFacts = append(newFacts, r.Head)
			// Represent the fact as a rule for arity validation.
			candidate.Rules = append(candidate.Rules, ast.Rule{Head: r.Head})
			continue
		}
		candidate.Rules = append(candidate.Rules, r)
	}
	for _, a := range newFacts {
		if rel := s.facts.Lookup(a.Pred); rel != nil && rel.Arity() != len(a.Args) {
			return fmt.Sprintf("error: fact %s clashes with existing arity %d", a, rel.Arity())
		}
	}
	if err := candidate.Validate(); err != nil {
		return "error: " + err.Error()
	}
	for _, r := range prog.Rules {
		if !r.IsFact() {
			s.prog.Rules = append(s.prog.Rules, r)
		}
	}
	for _, a := range newFacts {
		if err := s.facts.AddAtom(a); err != nil {
			return "error: " + err.Error()
		}
	}
	s.handle = nil
	return fmt.Sprintf("ok (%d statements)", len(prog.Rules))
}

// maintain applies :insert/:retract through the incremental maintainer.
// The first use materializes the fixpoint once; later updates run delta
// rounds only. The session's fact store is mirrored on success so
// queries (which evaluate from s.facts) agree with the handle.
func (s *session) maintain(retract bool, factText string) string {
	atoms, err := parser.AtomList(strings.TrimSuffix(factText, "."))
	if err != nil {
		return "error: " + err.Error()
	}
	var b strings.Builder
	if s.handle == nil {
		h, stats, err := eval.Maintain(s.prog, s.facts, eval.Options{Budget: s.budget})
		if err != nil {
			return "error: " + err.Error()
		}
		s.handle = h
		fmt.Fprintf(&b, "materialized: %d facts derived, %d rule firings\n", stats.Derived, stats.Firings)
	}
	var us eval.UpdateStats
	if retract {
		us, err = s.handle.Retract(atoms)
	} else {
		us, err = s.handle.Insert(atoms)
	}
	if err != nil {
		// The handle may be mid-update; drop it so the next :insert
		// rebuilds from the (unchanged) session facts.
		s.handle = nil
		var le *guard.LimitError
		if errors.As(err, &le) {
			return fmt.Sprintf("error: %v\n  progress: %s\n  (update aborted; session facts unchanged)", le, le.Usage)
		}
		return "error: " + err.Error()
	}
	for _, a := range atoms {
		if retract {
			s.retractFact(a)
		} else if err := s.facts.AddAtom(a); err != nil {
			s.handle = nil
			return "error: " + err.Error()
		}
	}
	fmt.Fprintf(&b, "%s", us)
	return b.String()
}

// retractFact removes one ground fact from the session's fact store.
func (s *session) retractFact(a ast.Atom) {
	rel := s.facts.Lookup(a.Pred)
	if rel == nil {
		return
	}
	row := make(database.Row, 0, len(a.Args))
	for _, t := range a.Args {
		row = append(row, database.Intern(t.Name))
	}
	id := rel.RowID(row)
	if id < 0 {
		return
	}
	rel.DeleteRows(func(i int) bool { return i == int(id) })
}

// buildQuery compiles a query body into a fresh query rule whose head
// carries the body's variables, appended to a clone of the session
// program.
func (s *session) buildQuery(body string) (*ast.Program, string, []string, error) {
	atoms, err := parser.AtomList(body)
	if err != nil {
		return nil, "", nil, err
	}
	if len(atoms) == 0 {
		return nil, "", nil, errors.New("empty query")
	}
	s.qn++
	headPred := fmt.Sprintf("˂query%d", s.qn)
	vars := ast.VarsOfAtoms(atoms)
	args := make([]ast.Term, len(vars))
	for i, v := range vars {
		args[i] = ast.V(v)
	}
	q := cq.CQ{Head: ast.Atom{Pred: headPred, Args: args}, Body: atoms}
	prog := s.prog.Clone()
	prog.Rules = append(prog.Rules, ast.Rule{Head: q.Head, Body: q.Body})
	return prog, headPred, vars, nil
}

// plan evaluates a query with plan instrumentation and renders the
// join tree the cost-based planner chose for every rule the query
// touched — access paths, estimated vs actual rows, plan-cache totals
// — instead of the answers.
func (s *session) plan(body string) string {
	prog, headPred, _, err := s.buildQuery(body)
	if err != nil {
		return "error: " + err.Error()
	}
	out, _, report, err := eval.EvalExplain(prog, s.facts, eval.Options{Budget: s.budget})
	if err != nil {
		var le *guard.LimitError
		if !errors.As(err, &le) {
			return "error: " + err.Error()
		}
		// A budget trip still produced plans worth showing.
	}
	msg := strings.TrimRight(report.String(), "\n")
	if rel := out.Lookup(headPred); rel != nil {
		msg += fmt.Sprintf("\n%d answers", rel.Len())
	}
	return msg
}

// query evaluates "?- body" by compiling the body into a fresh query
// rule whose head carries the body's variables.
func (s *session) query(body string) string {
	prog, headPred, vars, err := s.buildQuery(body)
	if err != nil {
		return "error: " + err.Error()
	}
	rel, _, err := eval.Goal(prog, s.facts, headPred, eval.Options{Budget: s.budget})
	if err != nil {
		var le *guard.LimitError
		if errors.As(err, &le) {
			return fmt.Sprintf("error: %v\n  progress: %s\n  (query aborted; session preserved)", le, le.Usage)
		}
		var pe *guard.PanicError
		if errors.As(err, &pe) {
			return fmt.Sprintf("error: internal panic during evaluation: %v (session preserved)", pe.Value)
		}
		return "error: " + err.Error()
	}
	if len(vars) == 0 {
		if rel.Len() > 0 {
			return "true"
		}
		return "false"
	}
	if rel.Len() == 0 {
		return "no answers"
	}
	var lines []string
	var row database.Row
	for r := 0; r < rel.Len(); r++ {
		row = rel.AppendRowAt(row[:0], r)
		parts := make([]string, len(vars))
		for i, v := range vars {
			parts[i] = fmt.Sprintf("%s = %s", v, database.Symbol(row[i]))
		}
		lines = append(lines, "  "+strings.Join(parts, ", "))
	}
	sort.Strings(lines)
	return fmt.Sprintf("%d answers:\n%s", rel.Len(), strings.Join(lines, "\n"))
}
