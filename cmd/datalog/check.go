package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"datalogeq/internal/analyze"
	"datalogeq/internal/parser"
)

// fileDiagnostic is one analyzer finding tagged with the file it came
// from, the shape emitted by "datalog check -json".
type fileDiagnostic struct {
	File string `json:"file"`
	analyze.Diagnostic
}

// cmdCheck runs the static analyzer over one or more program files and
// prints positioned diagnostics, human-readable by default or as a
// JSON array with -json. It returns an error (exit status 1) when any
// file fails to parse or produces an error-severity diagnostic;
// warnings and infos alone exit 0.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	progPath := fs.String("program", "", "program file (may also be given as positional arguments)")
	goal := fs.String("goal", "", "goal predicate: enables reachability and boundedness passes")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	noInfo := fs.Bool("no-info", false, "suppress info-severity diagnostics")
	maxStates := fs.Int("max-states", 0, "budget for the boundedness pass: automaton states per construction (0 = the pass's built-in default)")
	listPasses := fs.Bool("passes", false, "list the registered passes and exit")
	fs.Parse(args)
	if *listPasses {
		for _, p := range analyze.Passes() {
			needs := ""
			if p.NeedsGoal {
				needs = " (needs -goal)"
			}
			fmt.Printf("%s %-20s %s%s\n", p.Code, p.Name, p.Doc, needs)
		}
		return nil
	}
	var files []string
	if *progPath != "" {
		files = append(files, *progPath)
	}
	files = append(files, fs.Args()...)
	if len(files) == 0 {
		return fmt.Errorf("check needs -program or at least one file argument")
	}

	var all []fileDiagnostic
	for _, file := range files {
		diags, err := checkFile(file, analyze.Options{Goal: *goal, BoundedMaxStates: *maxStates})
		if err != nil {
			return err
		}
		for _, d := range diags {
			if *noInfo && d.Severity == analyze.Info {
				continue
			}
			all = append(all, fileDiagnostic{File: file, Diagnostic: d})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []fileDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			return err
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s:%s\n", d.File, d.Diagnostic)
		}
	}

	nerr := 0
	for _, d := range all {
		if d.Severity == analyze.Error {
			nerr++
		}
	}
	if nerr > 0 {
		return fmt.Errorf("check: %d error(s) in %d file(s)", nerr, len(files))
	}
	return nil
}

// checkFile parses the file without validation (so arity clashes reach
// the analyzer as positioned DL0001 diagnostics instead of one
// position-less error) and runs every analysis pass. A syntax error —
// or an unreadable file — is reported as a DL0000 diagnostic rather
// than aborting the run, so a multi-file invocation checks every file
// and -json always emits a complete, valid array.
func checkFile(path string, opts analyze.Options) ([]analyze.Diagnostic, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return []analyze.Diagnostic{{
			Code:     "DL0000",
			Severity: analyze.Error,
			Message:  err.Error(),
		}}, nil
	}
	prog, perr := parser.ProgramUnvalidated(string(src))
	if perr != nil {
		d := analyze.Diagnostic{Code: "DL0000", Severity: analyze.Error, Message: perr.Error()}
		if pe, ok := perr.(*parser.Error); ok {
			d.Line, d.Col = pe.Line, pe.Col
			d.Message = "syntax error: " + pe.Msg
		}
		return []analyze.Diagnostic{d}, nil
	}
	return analyze.Run(prog, opts), nil
}
