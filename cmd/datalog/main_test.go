package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdEval(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c).")
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-naive"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-program", prog}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "zzz"}); err == nil {
		t.Error("unknown goal accepted")
	}
	bad := write(t, dir, "bad.dl", "p(X :- e(X).")
	if err := cmdEval([]string{"-program", bad, "-db", db, "-goal", "p"}); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestCmdEvalWorkersAndTimeout(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c).")
	for _, workers := range []string{"1", "4"} {
		if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-workers", workers}); err != nil {
			t.Fatalf("-workers %s: %v", workers, err)
		}
	}
	// A generous timeout lets the evaluation finish.
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-timeout", "1m"}); err != nil {
		t.Fatalf("-timeout 1m: %v", err)
	}
	// A zero-width deadline aborts: context.WithTimeout(0) is expired on
	// arrival, so Eval must return the deadline error.
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-timeout", "1ns"}); err == nil {
		t.Error("expired timeout accepted")
	}
}

func TestCmdUnfold(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "nr.dl", `
		q(X, Y) :- r(X, Z), r(Z, Y).
		r(X, Y) :- e(X, Y).
		r(X, Y) :- f(X, Y).
	`)
	if err := cmdUnfold([]string{"-program", prog, "-goal", "q"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdUnfold([]string{"-program", prog, "-goal", "q", "-minimize"}); err != nil {
		t.Fatal(err)
	}
	rec := write(t, dir, "rec.dl", "p(X) :- p(X).\np(X) :- e(X).\n")
	if err := cmdUnfold([]string{"-program", rec, "-goal", "p"}); err == nil {
		t.Error("recursive program accepted by unfold")
	}
}

func TestCmdClassifyAndTrees(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- b(X, Y).\n")
	if err := cmdClassify([]string{"-program", prog}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrees([]string{"-program", prog, "-goal", "p", "-depth", "3", "-count", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdClassify([]string{"-program", filepath.Join(dir, "missing.dl")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdTreesDOT(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- b(X, Y).\n")
	if err := cmdTrees([]string{"-program", prog, "-goal", "p", "-depth", "2", "-dot"}); err != nil {
		t.Fatal(err)
	}
}
