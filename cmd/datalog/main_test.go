package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datalogeq/internal/database"
	"datalogeq/internal/eval"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStderr runs fn with os.Stderr redirected into a buffer and
// returns what fn printed there.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	fn()
	w.Close()
	return <-done
}

func TestCmdEval(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c).")
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-naive"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-program", prog}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "zzz"}); err == nil {
		t.Error("unknown goal accepted")
	}
	bad := write(t, dir, "bad.dl", "p(X :- e(X).")
	if err := cmdEval([]string{"-program", bad, "-db", db, "-goal", "p"}); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestCmdEvalWorkersAndTimeout(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c).")
	for _, workers := range []string{"1", "4"} {
		if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-workers", workers}); err != nil {
			t.Fatalf("-workers %s: %v", workers, err)
		}
	}
	// A generous timeout lets the evaluation finish.
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-timeout", "1m"}); err != nil {
		t.Fatalf("-timeout 1m: %v", err)
	}
	// A zero-width deadline trips the wall budget. The trip degrades
	// gracefully: partial results, an INCOMPLETE note, exit 0.
	var err error
	detail := captureStderr(t, func() {
		err = cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-timeout", "1ns"})
	})
	if err != nil {
		t.Errorf("expired timeout must degrade, got error: %v", err)
	}
	if !strings.Contains(detail, "INCOMPLETE") || !strings.Contains(detail, "budget exhausted") {
		t.Errorf("tripped eval stderr %q missing the INCOMPLETE note", detail)
	}
}

// TestCmdEvalBudgetTrip: -max-facts trips mid-evaluation; the partial
// fixpoint is printed with the INCOMPLETE note, and the same budget with
// room to spare changes nothing.
func TestCmdEvalBudgetTrip(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c). e(c, d).")
	var err error
	detail := captureStderr(t, func() {
		err = cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-max-facts", "2"})
	})
	if err != nil {
		t.Errorf("facts trip must degrade, got error: %v", err)
	}
	if !strings.Contains(detail, "INCOMPLETE") || !strings.Contains(detail, "facts budget") {
		t.Errorf("tripped eval stderr %q missing the facts-budget note", detail)
	}
	detail = captureStderr(t, func() {
		err = cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-max-facts", "100", "-max-steps", "1000"})
	})
	if err != nil {
		t.Errorf("generous budget: %v", err)
	}
	if strings.Contains(detail, "INCOMPLETE") {
		t.Errorf("generous budget still tripped: %q", detail)
	}
}

func TestCmdUnfold(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "nr.dl", `
		q(X, Y) :- r(X, Z), r(Z, Y).
		r(X, Y) :- e(X, Y).
		r(X, Y) :- f(X, Y).
	`)
	if err := cmdUnfold([]string{"-program", prog, "-goal", "q"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdUnfold([]string{"-program", prog, "-goal", "q", "-minimize"}); err != nil {
		t.Fatal(err)
	}
	rec := write(t, dir, "rec.dl", "p(X) :- p(X).\np(X) :- e(X).\n")
	if err := cmdUnfold([]string{"-program", rec, "-goal", "p"}); err == nil {
		t.Error("recursive program accepted by unfold")
	}
}

func TestCmdClassifyAndTrees(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- b(X, Y).\n")
	if err := cmdClassify([]string{"-program", prog}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrees([]string{"-program", prog, "-goal", "p", "-depth", "3", "-count", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdClassify([]string{"-program", filepath.Join(dir, "missing.dl")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdTreesDOT(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- b(X, Y).\n")
	if err := cmdTrees([]string{"-program", prog, "-goal", "p", "-depth", "2", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEvalWatch(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c).")
	in := strings.NewReader(strings.Join([]string{
		"% a comment, then a blank line",
		"",
		"+e(c, d).",
		"-e(a, b).",
		"this is not a fact",
		"e(a, e).", // bare line defaults to insert
	}, "\n"))
	// evalWatch is driven directly; cmdEval wires os.Stdin to it.
	p, err := loadProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(db)
	if err != nil {
		t.Fatal(err)
	}
	d, err := database.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	stderr := captureStderr(t, func() {
		h, _, err := eval.Maintain(p, d, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := evalWatch(h, "p", in, &out); err != nil {
			t.Fatal(err)
		}
	})
	got := out.String()
	for _, want := range []string{"% insert:", "% retract:", "p(a, e).", "p(b, d).", "p(c, d)."} {
		if !strings.Contains(got, want) {
			t.Errorf("watch output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "p(a, b).") || strings.Contains(got, "p(a, c).") {
		t.Errorf("retracted closure still present:\n%s", got)
	}
	if !strings.Contains(stderr, "line 5") {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestCmdEvalDurable runs eval -data over a fresh directory (seeding
// from -db), then reopens it without -db and expects the same goal
// relation — the CLI face of crash recovery.
func TestCmdEvalDurable(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c).")
	store := filepath.Join(dir, "store")

	first, err := captureStdout(t, func() error {
		return cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-data", store})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "p(a, c).") {
		t.Fatalf("first run output missing closure:\n%s", first)
	}
	second, err := captureStdout(t, func() error {
		return cmdEval([]string{"-program", prog, "-goal", "p", "-data", store, "-checkpoint"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("recovered run differs:\n%s\nwant:\n%s", second, first)
	}
	// After -checkpoint the state lives in a snapshot; recover -verify
	// must accept it.
	out, err := captureStdout(t, func() error {
		return cmdRecover([]string{"-data", store, "-program", prog, "-verify"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"generation:", "snapshot:          true", "verify:            ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("recover output missing %q:\n%s", want, out)
		}
	}
}
