package main

import (
	"strings"
	"testing"
)

// TestCmdEvalExplain: -explain prints the chosen join trees and the
// plan-cache totals to stderr, without changing the tuples on stdout.
func TestCmdEvalExplain(t *testing.T) {
	dir := t.TempDir()
	prog := write(t, dir, "tc.dl", "p(X, Y) :- e(X, Z), p(Z, Y).\np(X, Y) :- e(X, Y).\n")
	db := write(t, dir, "g.dl", "e(a, b). e(b, c). e(c, d).")
	var err error
	detail := captureStderr(t, func() {
		err = cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-explain"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query plans:", "probe", "plan cache:", "delta at body atom"} {
		if !strings.Contains(detail, want) {
			t.Errorf("-explain stderr lacks %q:\n%s", want, detail)
		}
	}
	// -no-planner composes with -explain and flags the fixed order.
	detail = captureStderr(t, func() {
		err = cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-explain", "-no-planner"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "fixed order") {
		t.Errorf("-no-planner -explain stderr lacks the fixed-order flag:\n%s", detail)
	}
	// -no-planner alone evaluates normally.
	if err := cmdEval([]string{"-program", prog, "-db", db, "-goal", "p", "-no-planner"}); err != nil {
		t.Fatal(err)
	}
}

// TestReplPlan: :plan renders the join trees for a query body and
// keeps the session usable.
func TestReplPlan(t *testing.T) {
	s := newSession()
	s.statement("p(X, Y) :- e(X, Z), p(Z, Y).")
	s.statement("p(X, Y) :- e(X, Y).")
	s.statement("e(a, b). e(b, c).")
	quit, msg := s.command(":plan p(a, X)")
	if quit {
		t.Fatal(":plan quit the session")
	}
	for _, want := range []string{"plan cache:", "est ", "answers"} {
		if !strings.Contains(msg, want) {
			t.Errorf(":plan output lacks %q:\n%s", want, msg)
		}
	}
	if _, msg := s.command(":plan"); !strings.Contains(msg, "usage") {
		t.Errorf(":plan without a body = %q, want usage note", msg)
	}
	if _, msg := s.command(":plan p(X"); !strings.Contains(msg, "error") {
		t.Errorf(":plan with a bad body = %q, want error", msg)
	}
	// The session still answers queries afterwards.
	if got := s.statement("?- p(a, X)."); !strings.Contains(got, "X = b") {
		t.Errorf("query after :plan = %q", got)
	}
}
