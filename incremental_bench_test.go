// Incremental-maintenance benchmark families (PR 8). Run with
//
//	go test -run=NONE -bench=Incremental .
//
// Every family maintains a program over one graph shape and replays a
// deterministic gen.UpdateStream of 1-, 10- and 100-fact deltas:
// "retract" times removing a batch of existing edges (the reinsertion
// that restores the state runs off the clock), "insert" times putting
// it back, and "scratch" is the from-scratch re-fixpoint an engine
// without maintenance would pay per update — the baseline the delta
// paths are measured against. Pipe the output through cmd/benchjson to
// produce the BENCH_PR8.json trajectory file.
package datalogeq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"

	_ "datalogeq/internal/ivm" // registers the maintainer behind eval.Maintain
)

func BenchmarkIncremental(b *testing.B) {
	tc := parser.MustProgram(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	rng := rand.New(rand.NewSource(11))
	families := []struct {
		name string
		prog *ast.Program
		db   *database.DB
	}{
		{"chain60", tc, gen.ChainGraph(60)},
		{"random40x120", tc, gen.RandomGraph(rng, 40, 120)},
		{"layered-chain40", gen.LayeredTC(), gen.ChainGraph(40)},
	}
	for _, f := range families {
		for _, delta := range []int{1, 10, 100} {
			stream := gen.UpdateStream(rand.New(rand.NewSource(int64(delta))), f.db, "e", 64, delta)
			prefix := fmt.Sprintf("%s/delta%d/", f.name, delta)

			b.Run(prefix+"retract", func(b *testing.B) {
				h, _, err := eval.Maintain(f.prog, f.db, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				var last eval.UpdateStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					batch := stream[i%len(stream)]
					us, err := h.Retract(batch)
					if err != nil {
						b.Fatal(err)
					}
					last = us
					b.StopTimer()
					if _, err := h.Insert(batch); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(last.RowsDeleted), "rows-out")
				b.ReportMetric(float64(last.Rederived), "rederived")
				b.ReportMetric(float64(last.CountUpdates), "count-updates")
			})

			b.Run(prefix+"insert", func(b *testing.B) {
				h, _, err := eval.Maintain(f.prog, f.db, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				var last eval.UpdateStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					batch := stream[i%len(stream)]
					b.StopTimer()
					if _, err := h.Retract(batch); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					us, err := h.Insert(batch)
					if err != nil {
						b.Fatal(err)
					}
					last = us
				}
				b.ReportMetric(float64(last.RowsInserted), "rows-in")
				b.ReportMetric(float64(last.CountUpdates), "count-updates")
			})

			b.Run(prefix+"scratch", func(b *testing.B) {
				var stats eval.Stats
				for i := 0; i < b.N; i++ {
					_, s, err := eval.Eval(f.prog, f.db, eval.Options{})
					if err != nil {
						b.Fatal(err)
					}
					stats = s
				}
				b.ReportMetric(float64(stats.Derived), "derived")
				b.ReportMetric(float64(stats.Firings), "firings")
			})
		}
	}

	// Tip families: a single fact appended at (and retracted from) the
	// graph boundary. Unlike the random streams above — where one
	// mid-graph edge can carry a large fraction of the closure — a tip
	// edge is the steady-state maintenance workload: the affected row
	// set is one path's worth, and the delta paths must beat the
	// re-fixpoint by ≥10×.
	tips := []struct {
		name string
		prog *ast.Program
		db   *database.DB
		tip  []ast.Atom
	}{
		{"chain60", tc, gen.ChainGraph(60), parser.MustAtomList("e(n60, n61)")},
		{"layered-chain40", gen.LayeredTC(), gen.ChainGraph(40), parser.MustAtomList("e(n40, n41)")},
	}
	for _, f := range tips {
		prefix := f.name + "/tip1/"

		b.Run(prefix+"insert", func(b *testing.B) {
			h, _, err := eval.Maintain(f.prog, f.db, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var last eval.UpdateStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				us, err := h.Insert(f.tip)
				if err != nil {
					b.Fatal(err)
				}
				last = us
				b.StopTimer()
				if _, err := h.Retract(f.tip); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(last.RowsInserted), "rows-in")
			b.ReportMetric(float64(last.CountUpdates), "count-updates")
		})

		b.Run(prefix+"retract", func(b *testing.B) {
			h, _, err := eval.Maintain(f.prog, f.db, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var last eval.UpdateStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if _, err := h.Insert(f.tip); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				us, err := h.Retract(f.tip)
				if err != nil {
					b.Fatal(err)
				}
				last = us
			}
			b.ReportMetric(float64(last.RowsDeleted), "rows-out")
			b.ReportMetric(float64(last.Rederived), "rederived")
			b.ReportMetric(float64(last.CountUpdates), "count-updates")
		})

		b.Run(prefix+"scratch", func(b *testing.B) {
			// The post-insert state: what an engine without maintenance
			// re-derives after the tip fact lands.
			dbTip := f.db.Clone()
			for _, a := range f.tip {
				if err := dbTip.AddAtom(a); err != nil {
					b.Fatal(err)
				}
			}
			var stats eval.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := eval.Eval(f.prog, dbTip, eval.Options{})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Derived), "derived")
			b.ReportMetric(float64(stats.Firings), "firings")
		})
	}
}
