// End-to-end integration tests over the testdata corpus: the same files
// the command-line tools consume, driven through the library API. Each
// case pins a verdict of the paper.
package datalogeq_test

import (
	"os"
	"path/filepath"
	"testing"

	"datalogeq/internal/ast"
	"datalogeq/internal/core"
	"datalogeq/internal/cq"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/parser"
	"datalogeq/internal/ucq"
)

func load(t *testing.T, name string) *ast.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Program(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return prog
}

func loadUCQ(t *testing.T, name, goal string) ucq.UCQ {
	t.Helper()
	prog := load(t, name)
	var ds []cq.CQ
	for _, r := range prog.Rules {
		if r.Head.Pred != goal {
			t.Fatalf("%s: head %s does not match goal %q", name, r.Head, goal)
		}
		ds = append(ds, cq.CQ{Head: r.Head, Body: r.Body})
	}
	return ucq.New(ds...)
}

func TestIntegrationEvaluate(t *testing.T) {
	prog := load(t, "tc.dl")
	src, err := os.ReadFile(filepath.Join("testdata", "tc_graph.dl"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := database.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := eval.Goal(prog, db, "p", eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"a", "d"}, {"b", "d"}, {"c", "d"}}
	if rel.Len() != len(want) {
		t.Fatalf("answers = %v", rel.Tuples())
	}
	for _, w := range want {
		if !rel.Contains(database.Tuple{w[0], w[1]}) {
			t.Errorf("missing p(%s, %s)", w[0], w[1])
		}
	}
}

func TestIntegrationContainment(t *testing.T) {
	prog := load(t, "tc.dl")
	q := loadUCQ(t, "paths3.dl", "p")
	res, err := core.ContainsUCQ(prog, "p", q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contained {
		t.Fatal("transitive closure is not contained in paths <= 3")
	}
	// The separating database from the witness must disagree under
	// evaluation.
	db, head := res.Witness.Query.CanonicalDB()
	progRel, _, err := eval.Goal(prog, db, "p", eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ucqRel, err := q.Apply(db)
	if err != nil {
		t.Fatal(err)
	}
	if !progRel.Contains(head) || ucqRel.Contains(head) {
		t.Error("witness database does not separate")
	}
}

func TestIntegrationEquivalence(t *testing.T) {
	cases := []struct {
		rec, nr string
		goal    string
		want    bool
	}{
		{"trendy.dl", "trendy_nr.dl", "buys", true},
		{"knows.dl", "knows_nr.dl", "buys", false},
	}
	for _, c := range cases {
		res, err := core.EquivalentToNonrecursive(load(t, c.rec), c.goal, load(t, c.nr), core.Options{})
		if err != nil {
			t.Fatalf("%s vs %s: %v", c.rec, c.nr, err)
		}
		if res.Equivalent != c.want {
			t.Errorf("%s vs %s: equivalent = %v, want %v", c.rec, c.nr, res.Equivalent, c.want)
		}
		if !res.Equivalent {
			// The reported separating database must actually separate.
			tuple, separated, err := core.CheckOnDB(load(t, c.rec), load(t, c.nr), c.goal, res.SeparatingDB)
			if err != nil {
				t.Fatal(err)
			}
			if !separated {
				t.Errorf("%s vs %s: separating DB does not separate (tuple %v)", c.rec, c.nr, tuple)
			}
		}
	}
}

func TestIntegrationSameGeneration(t *testing.T) {
	prog := load(t, "samegen.dl")
	if !prog.IsRecursive() || prog.IsLinear() != true {
		// sg has one recursive subgoal per rule: linear.
		t.Errorf("classification wrong: recursive=%v linear=%v", prog.IsRecursive(), prog.IsLinear())
	}
	// Its unfoldings to depth 3 are all contained in the program
	// itself (CK86 direction through the corpus file).
	q := cq.CQ{
		Head: parser.MustAtom("sg(X, Y)"),
		Body: parser.MustAtomList("up(X, U), flat(U, V), down(V, Y)"),
	}
	ok, err := core.CQContainedInProgram(q, prog, "sg")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("depth-2 expansion should be contained in same-generation")
	}
}
