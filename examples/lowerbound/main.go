// Lowerbound: walks through the §5.3 reduction that proves containment
// of linear Datalog programs in unions of conjunctive queries
// EXPSPACE-hard. A Turing machine is compiled into a program Π whose
// expansions spell candidate computations and a union Θ of error
// queries; Π ⊆ Θ exactly when the machine does not accept. The example
// builds both directions' evidence at the database level.
package main

import (
	"fmt"
	"log"

	"datalogeq/internal/eval"
	"datalogeq/internal/expansion"
	"datalogeq/internal/tm"
)

func main() {
	accepting := &tm.Machine{
		States:      []string{"s0", "s1", "qa"},
		TapeSymbols: []string{"_", "1"},
		Blank:       "_",
		Start:       "s0",
		Accept:      []string{"qa"},
		Transitions: []tm.Transition{
			{State: "s0", Read: "_", Write: "1", Move: tm.Right, NewState: "s1"},
			{State: "s1", Read: "_", Write: "_", Move: tm.Stay, NewState: "qa"},
		},
	}
	rejecting := &tm.Machine{
		States:      []string{"s0", "qa"},
		TapeSymbols: []string{"_"},
		Blank:       "_",
		Start:       "s0",
		Accept:      []string{"qa"},
		Transitions: []tm.Transition{
			{State: "s0", Read: "_", Write: "_", Move: tm.Right, NewState: "s0"},
		},
	}

	const n = 1
	fmt.Printf("Address width n = %d (configurations of 2^%d cells).\n\n", n, n)

	// Accepting machine: the computation database separates Π from Θ.
	e, err := tm.Encode53(accepting, n)
	if err != nil {
		log.Fatal(err)
	}
	s := e.Stats()
	fmt.Printf("Accepting machine: Π has %d rules, Θ has %d error queries.\n", s.Rules, s.ErrorQueries)
	run, _ := accepting.AcceptingRun(1 << n)
	fmt.Printf("Accepting run (%d configurations):\n", len(run))
	for _, c := range run {
		fmt.Printf("  %s\n", c)
	}
	db, err := e.ComputationDB(run)
	if err != nil {
		log.Fatal(err)
	}
	rel, _, err := eval.Goal(e.Program, db, tm.Goal, eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	caught, err := e.Errors.Holds(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("On the computation database: Π derives C = %v, Θ fires = %v\n", rel.Len() > 0, caught)
	fmt.Println("=> Π ⊄ Θ, witnessing that M accepts.")
	fmt.Println()

	// Rejecting machine: every (sampled) expansion of Π is caught by Θ.
	e2, err := tm.Encode53(rejecting, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Rejecting machine: Π has %d rules, Θ has %d error queries.\n",
		e2.Stats().Rules, e2.Stats().ErrorQueries)
	queries := expansion.Expansions(e2.Program, tm.Goal, 6, 25)
	all := true
	for _, q := range queries {
		cdb, head := q.CanonicalDB()
		ok, err := e2.Errors.Holds(cdb, head)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			all = false
		}
	}
	fmt.Printf("Sampled %d expansions of Π; every one caught by an error query: %v\n", len(queries), all)
	fmt.Println("=> consistent with Π ⊆ Θ, witnessing that M rejects.")
}
