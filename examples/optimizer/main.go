// Optimizer: Example 1.1 from the paper as a query-optimization
// scenario. A recursive program is profitable to replace by a
// nonrecursive one only when the two are equivalent — the paper's
// central decision problem. Π₁ (trendy) is equivalent to its
// nonrecursive rewriting; Π₂ (knows) is inherently recursive, and the
// decision procedure produces a concrete database on which the
// rewriting would change query answers.
package main

import (
	"fmt"
	"log"

	"datalogeq/internal/ast"
	"datalogeq/internal/core"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
)

func main() {
	optimize("Π₁ (trendy)", gen.Example11Trendy(), gen.Example11TrendyNR())
	fmt.Println()
	optimize("Π₂ (knows)", gen.Example11Knows(), gen.Example11KnowsNR())
}

func optimize(name string, rec, nr *ast.Program) {
	fmt.Printf("=== %s ===\n", name)
	fmt.Println("recursive program:")
	fmt.Print(indent(rec.String()))
	fmt.Println("candidate nonrecursive rewriting:")
	fmt.Print(indent(nr.String()))

	res, err := core.EquivalentToNonrecursive(rec, "buys", nr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Equivalent {
		fmt.Println("verdict: EQUIVALENT — safe to eliminate the recursion.")
		return
	}
	fmt.Printf("verdict: NOT EQUIVALENT (%s) — the rewriting is unsafe.\n", res.Failure)
	if res.Witness != nil {
		fmt.Println("proof tree the rewriting misses:")
		fmt.Print(indent(res.Witness.Tree.String()))
	}
	fmt.Println("database on which the programs disagree:")
	fmt.Print(indent(res.SeparatingDB.String() + "\n"))

	// Demonstrate the disagreement by evaluating both programs.
	r1, _, err := eval.Goal(rec, res.SeparatingDB, "buys", eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r2, _, err := eval.Goal(nr, res.SeparatingDB, "buys", eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recursive answers %d tuples, nonrecursive answers %d; tuple %v is lost.\n",
		r1.Len(), r2.Len(), res.SeparatingTuple)
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
