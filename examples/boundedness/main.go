// Boundedness: the paper distinguishes its decidable problem
// (equivalence to a *given* nonrecursive program) from the undecidable
// boundedness problem (does *some* equivalent nonrecursive program
// exist [GMSV93]). The decision procedure of Theorem 5.12 still yields
// a useful semi-procedure: search for a depth k at which the program is
// contained in — and hence equivalent to — the union of its own
// expansions of height <= k. This example runs that search on bounded
// and unbounded programs.
package main

import (
	"fmt"
	"log"

	"datalogeq/internal/ast"
	"datalogeq/internal/core"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"
)

func main() {
	probe("Π₁ of Example 1.1 (trendy)", gen.Example11Trendy(), "buys", 4)
	fmt.Println()

	// A doubly-guarded variant: recursion that stalls after one step
	// because the recursive call reuses the same guard.
	bounded := parser.MustProgram(`
		reach(X, Y) :- direct(X, Y).
		reach(X, Y) :- hub(X), hub(Z), reach(Z, Y).
	`)
	probe("hub-guarded reachability", bounded, "reach", 4)
	fmt.Println()

	probe("transitive closure (inherently recursive)", gen.TransitiveClosure(), "p", 4)
}

func probe(name string, prog *ast.Program, goal string, maxDepth int) {
	fmt.Printf("=== %s ===\n", name)
	fmt.Print(prog)
	u, k, ok, err := core.BoundedRewriting(prog, goal, maxDepth, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Printf("no nonrecursive equivalent among expansion unions of height <= %d\n", maxDepth)
		return
	}
	fmt.Printf("bounded at height %d; equivalent union of %d conjunctive queries:\n", k, u.Size())
	fmt.Print(u)
}
