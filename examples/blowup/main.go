// Blowup: reproduces the succinctness examples of §6 (Examples 6.1,
// 6.2, 6.3, and 6.6). Nonrecursive programs can be exponentially more
// succinct than unions of conjunctive queries; this is what lifts
// containment from 2EXPTIME (in a UCQ) to 3EXPTIME (in a nonrecursive
// program). The tables print, for each construction, the program size
// against the size of its UCQ unfolding.
package main

import (
	"fmt"
	"log"

	"datalogeq/internal/ast"
	"datalogeq/internal/gen"
	"datalogeq/internal/nonrec"
)

func main() {
	fmt.Println("Example 6.1 — dist_n(x, y): a path of length exactly 2^n.")
	fmt.Println("One disjunct whose body doubles with every level:")
	table("dist", func(n int) (*ast.Program, string) {
		return gen.DistProgram(n), gen.DistGoal(n)
	}, 1, 6)

	fmt.Println("\nExample 6.2 — distle_n(x, y): a path of length at most 2^n.")
	fmt.Println("Exponentially many disjuncts (one per path length):")
	table("distle", func(n int) (*ast.Program, string) {
		return gen.DistLeProgram(n), fmt.Sprintf("distle%d", n)
	}, 1, 4)

	fmt.Println("\nExample 6.3 — equal_n: equally-labeled parallel paths of length 2^n.")
	table("equal", func(n int) (*ast.Program, string) {
		return gen.EqualProgram(n), fmt.Sprintf("equal%d", n)
	}, 1, 4)

	fmt.Println("\nExample 6.6 / Theorem 6.7 — word_n: linear nonrecursive programs")
	fmt.Println("unfold to exponentially many disjuncts of only linear size:")
	table("word", func(n int) (*ast.Program, string) {
		return gen.WordProgram(n), fmt.Sprintf("word%d", n)
	}, 1, 8)
}

func table(name string, build func(int) (*ast.Program, string), from, to int) {
	fmt.Printf("%4s %10s %12s %12s %10s\n", "n", "rules", "disjuncts", "totalAtoms", "maxAtoms")
	for n := from; n <= to; n++ {
		prog, goal := build(n)
		stats, err := nonrec.UnfoldStats(prog, goal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %10d %12d %12d %10d\n",
			n, len(prog.Rules), stats.Disjuncts, stats.TotalAtoms, stats.MaxAtoms)
	}
}
