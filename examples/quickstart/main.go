// Quickstart: parse a recursive Datalog program, evaluate it, and
// decide containment in a union of conjunctive queries — the core
// workflow of the library.
package main

import (
	"fmt"
	"log"

	"datalogeq/internal/core"
	"datalogeq/internal/database"
	"datalogeq/internal/eval"
	"datalogeq/internal/gen"
	"datalogeq/internal/parser"
)

func main() {
	// The transitive-closure program of the paper's Example 2.5:
	// e-steps terminated by a b-edge.
	prog := parser.MustProgram(`
		p(X, Y) :- e(X, Z), p(Z, Y).
		p(X, Y) :- b(X, Y).
	`)

	// Evaluate it over a small graph.
	db := database.MustParse(`
		e(paris, lyon). e(lyon, nice).
		b(nice, rome).
	`)
	rel, _, err := eval.Goal(prog, db, "p", eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("p(X, Y) over the database:")
	for i := 0; i < rel.Len(); i++ {
		row := rel.RowAt(i)
		fmt.Printf("  p(%s, %s)\n", database.Symbol(row[0]), database.Symbol(row[1]))
	}

	// Is the program contained in "paths of length at most 3"?
	// The decision procedure of Theorem 5.12 says no and produces a
	// counterexample expansion.
	q := gen.TCPathsUCQ(3)
	res, err := core.ContainsUCQ(prog, "p", q, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontained in paths of length <= 3? %v\n", res.Contained)
	if !res.Contained {
		fmt.Println("counterexample expansion:")
		fmt.Printf("  %s\n", res.Witness.Query)
	}

	// Paths of length at most 4 still do not suffice — transitive
	// closure is inherently recursive.
	q4 := gen.TCPathsUCQ(4)
	res4, err := core.ContainsUCQ(prog, "p", q4, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contained in paths of length <= 4? %v (witness height %d)\n",
		res4.Contained, res4.Witness.Tree.Depth())
}
